//! The GAN-training pipeline (paper §5.3).
//!
//! The paper "created a computational pipeline that trains a modified SAGAN
//! on CIFAR-10 and applied BugDoc to find root causes of ... mode collapse.
//! Our evaluation function sets a threshold on the Frechet Inception
//! Distance (FID) metric ... This pipeline specified only 6 parameters
//! limited to 5 possible values" with ~10-hour trainings.
//!
//! Substitution (see `DESIGN.md` §5): an analytic FID response surface over
//! the same 6×5 space, whose only threshold crossings are the two planted
//! mode-collapse regimes (parameter-disjoint, so the ground truth is exact):
//!
//! 1. an aggressive generator learning rate combined with high momentum
//!    (`gen_lr > 5e-4 ∧ beta1 > 0.75`) destabilizes training;
//! 2. a discriminator running at the maximum learning rate on the plain
//!    DCGAN architecture overpowers the generator (`disc_lr = 1e-3 ∧
//!    architecture = dcgan`).

use bugdoc_core::{
    Comparator, Conjunction, Dnf, EvalResult, Instance, ParamSpace, Predicate,
};
use bugdoc_engine::{Pipeline, PipelineError, SimTime};
use bugdoc_synth::Truth;
use std::sync::Arc;

/// FID threshold: runs at or below succeed, above fail (mode collapse).
pub const FID_THRESHOLD: f64 = 60.0;

/// The GAN-training pipeline simulator.
pub struct GanPipeline {
    space: Arc<ParamSpace>,
    truth: Truth,
}

impl GanPipeline {
    /// Builds the 6-parameter, 5-value space.
    pub fn new() -> Self {
        let space = ParamSpace::builder()
            .ordinal("gen_lr", [1e-5, 5e-5, 1e-4, 5e-4, 1e-3])
            .ordinal("disc_lr", [1e-5, 5e-5, 1e-4, 5e-4, 1e-3])
            .ordinal("n_steps", [10_000, 25_000, 50_000, 75_000, 100_000])
            .ordinal("batch_size", [16, 32, 64, 128, 256])
            .ordinal("beta1", [0.0, 0.25, 0.5, 0.75, 0.9])
            .categorical(
                "architecture",
                ["sagan", "dcgan", "wgan_gp", "lsgan", "stylegan_lite"],
            )
            .build();

        let gen_lr = space.by_name("gen_lr").unwrap();
        let beta1 = space.by_name("beta1").unwrap();
        let disc_lr = space.by_name("disc_lr").unwrap();
        let arch = space.by_name("architecture").unwrap();

        let truth = Truth::new(
            &space,
            Dnf::new(vec![
                Conjunction::new(vec![
                    Predicate::new(gen_lr, Comparator::Gt, 5e-4),
                    Predicate::new(beta1, Comparator::Gt, 0.75),
                ]),
                Conjunction::new(vec![
                    Predicate::new(disc_lr, Comparator::Eq, 1e-3),
                    Predicate::eq(arch, "dcgan"),
                ]),
            ]),
        );
        GanPipeline { space, truth }
    }

    /// The planted mode-collapse conditions.
    pub fn truth(&self) -> &Truth {
        &self.truth
    }

    /// The deterministic FID of a configuration: a smooth base surface in
    /// [25, 45] everywhere except the planted collapse regimes (≥ 150).
    pub fn fid(&self, instance: &Instance) -> f64 {
        if self.truth.fails(instance) {
            // Collapse: FID blows up, modulated slightly by step count.
            let steps = self.value_rank(instance, "n_steps");
            return 150.0 + 10.0 * steps as f64;
        }
        // Healthy training: longer runs and bigger batches help; extreme
        // learning-rate ratios hurt a little, never past the threshold.
        let steps = self.value_rank(instance, "n_steps") as f64; // 0..4
        let batch = self.value_rank(instance, "batch_size") as f64;
        let glr = self.value_rank(instance, "gen_lr") as f64;
        let dlr = self.value_rank(instance, "disc_lr") as f64;
        let arch_bonus = match instance
            .get(self.space.by_name("architecture").unwrap())
            .to_string()
            .as_str()
        {
            "sagan" => -3.0,
            "stylegan_lite" => -2.0,
            "wgan_gp" => -1.0,
            _ => 0.0,
        };
        let ratio_penalty = (glr - dlr).abs(); // 0..4
        45.0 - 2.0 * steps - 1.0 * batch + 1.5 * ratio_penalty + arch_bonus
    }

    fn value_rank(&self, instance: &Instance, param: &str) -> usize {
        let p = self.space.by_name(param).unwrap();
        self.space
            .domain(p)
            .index_of(instance.get(p))
            .expect("value from domain")
    }
}

impl Default for GanPipeline {
    fn default() -> Self {
        GanPipeline::new()
    }
}

impl Pipeline for GanPipeline {
    fn space(&self) -> &Arc<ParamSpace> {
        &self.space
    }

    fn execute(&self, instance: &Instance) -> Result<EvalResult, PipelineError> {
        Ok(EvalResult::from_score_at_most(
            self.fid(instance),
            FID_THRESHOLD,
        ))
    }

    fn cost(&self, instance: &Instance) -> SimTime {
        // "each configuration is trained in approximately 10 hours, depending
        // on the discriminator and generator learning rates and the number of
        // steps": 4–14 h scaled by step count, nudged by the learning rates.
        let steps = self.value_rank(instance, "n_steps") as f64;
        let lr_nudge =
            0.25 * (self.value_rank(instance, "gen_lr") + self.value_rank(instance, "disc_lr")) as f64;
        SimTime::from_hours(4.0 + 2.5 * steps + lr_nudge)
    }

    fn name(&self) -> &str {
        "gan-training (SAGAN/CIFAR-10, FID)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bugdoc_core::Value;

    fn base(p: &GanPipeline) -> Instance {
        Instance::from_pairs(
            p.space(),
            [
                ("gen_lr", Value::float(1e-4)),
                ("disc_lr", Value::float(1e-4)),
                ("n_steps", 50_000.into()),
                ("batch_size", 64.into()),
                ("beta1", 0.5.into()),
                ("architecture", "sagan".into()),
            ],
        )
    }

    #[test]
    fn space_is_6_by_5() {
        let p = GanPipeline::new();
        assert_eq!(p.space().len(), 6);
        for id in p.space().ids() {
            assert_eq!(p.space().domain(id).len(), 5);
        }
        assert_eq!(p.space().total_configurations(), 5u128.pow(6));
    }

    #[test]
    fn healthy_configuration_passes() {
        let p = GanPipeline::new();
        let inst = base(&p);
        assert!(p.fid(&inst) <= FID_THRESHOLD);
        assert!(p.execute(&inst).unwrap().outcome.is_succeed());
    }

    #[test]
    fn collapse_regimes_fail() {
        let p = GanPipeline::new();
        let s = p.space();
        let unstable = base(&p)
            .with(s.by_name("gen_lr").unwrap(), Value::float(1e-3))
            .with(s.by_name("beta1").unwrap(), Value::float(0.9));
        assert!(p.fid(&unstable) > FID_THRESHOLD);
        let overpowered = base(&p)
            .with(s.by_name("disc_lr").unwrap(), Value::float(1e-3))
            .with(s.by_name("architecture").unwrap(), "dcgan".into());
        assert!(p.fid(&overpowered) > FID_THRESHOLD);
    }

    #[test]
    fn evaluation_agrees_with_ground_truth_everywhere() {
        // Exhaustive over all 15,625 configurations: the ONLY threshold
        // crossings are the planted causes, so ground truth is exact.
        let p = GanPipeline::new();
        for inst in p.space().instances() {
            assert_eq!(
                p.execute(&inst).unwrap().outcome.is_fail(),
                p.truth().fails(&inst),
                "disagreement at {}",
                inst.display(p.space())
            );
        }
    }

    #[test]
    fn cost_scales_with_steps_and_lr() {
        let p = GanPipeline::new();
        let s = p.space();
        let short = base(&p).with(s.by_name("n_steps").unwrap(), 10_000.into());
        let long = base(&p).with(s.by_name("n_steps").unwrap(), 100_000.into());
        assert!(p.cost(&long).secs() > p.cost(&short).secs());
        // ~10 h in the middle of the space.
        let mid = p.cost(&base(&p)).secs() / 3600.0;
        assert!((5.0..15.0).contains(&mid), "mid-space cost {mid}h");
    }

    #[test]
    fn two_ground_truth_causes() {
        assert_eq!(GanPipeline::new().truth().len(), 2);
    }
}
