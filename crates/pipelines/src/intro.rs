//! The two motivating scenarios of the paper's introduction, as runnable
//! pipelines: the enterprise-analytics data-feed regression and the
//! supernova processing-version bug. Both are "real but sanitized" in the
//! paper; here they are deterministic simulators with the root cause the
//! anecdote describes, used by the `enterprise_analytics` and `supernova`
//! examples.

use bugdoc_core::{
    Conjunction, Dnf, EvalResult, Instance, ParamSpace, Predicate, Value,
};
use bugdoc_engine::{Pipeline, PipelineError, SimTime};
use bugdoc_synth::Truth;
use std::sync::Arc;

/// Paper §1, first example: "plots for sales forecasts showed a sharp
/// decrease compared to historical values. After much investigation, the
/// problem was tracked down to a data feed (coming from an external data
/// provider), whose temporal resolution had changed from monthly to weekly."
///
/// The manipulable parameters include the feed's provider and the temporal
/// resolution the feed delivers; the planted cause is their combination:
/// the external provider's feed at weekly resolution breaks the forecaster's
/// aggregation assumptions.
pub struct EnterpriseAnalyticsPipeline {
    space: Arc<ParamSpace>,
    truth: Truth,
}

impl EnterpriseAnalyticsPipeline {
    /// Builds the forecasting pipeline.
    pub fn new() -> Self {
        let space = ParamSpace::builder()
            .categorical("data_provider", ["internal", "acme_feed", "datastream"])
            .categorical("feed_resolution", ["monthly", "weekly", "daily"])
            .categorical("forecast_model", ["arima", "prophet", "xgboost"])
            .ordinal("feature_window_months", [3, 6, 12, 24])
            .categorical("seasonality", ["none", "additive", "multiplicative"])
            .build();
        let provider = space.by_name("data_provider").unwrap();
        let resolution = space.by_name("feed_resolution").unwrap();
        let truth = Truth::new(
            &space,
            Dnf::new(vec![Conjunction::new(vec![
                Predicate::eq(provider, "acme_feed"),
                Predicate::eq(resolution, "weekly"),
            ])]),
        );
        EnterpriseAnalyticsPipeline { space, truth }
    }

    /// Ground truth for scoring.
    pub fn truth(&self) -> &Truth {
        &self.truth
    }

    /// Forecast deviation against historical values (lower is better); the
    /// evaluation threshold is 0.15.
    pub fn forecast_deviation(&self, instance: &Instance) -> f64 {
        if self.truth.fails(instance) {
            return 0.62; // the "sharp decrease" the analysts saw
        }
        let model = instance.get(self.space.by_name("forecast_model").unwrap());
        let base = match model.to_string().as_str() {
            "prophet" => 0.05,
            "xgboost" => 0.07,
            _ => 0.09,
        };
        let window = instance.get(self.space.by_name("feature_window_months").unwrap());
        let window_penalty = if window == &Value::from(3) { 0.03 } else { 0.0 };
        base + window_penalty
    }
}

impl Default for EnterpriseAnalyticsPipeline {
    fn default() -> Self {
        Self::new()
    }
}

impl Pipeline for EnterpriseAnalyticsPipeline {
    fn space(&self) -> &Arc<ParamSpace> {
        &self.space
    }

    fn execute(&self, instance: &Instance) -> Result<EvalResult, PipelineError> {
        Ok(EvalResult::from_score_at_most(
            self.forecast_deviation(instance),
            0.15,
        ))
    }

    fn cost(&self, _instance: &Instance) -> SimTime {
        SimTime::from_mins(12.0)
    }

    fn name(&self) -> &str {
        "enterprise-analytics (sales forecast)"
    }
}

/// Paper §1, second example: "some visualizations of supernovas presented
/// unusual artifacts ... a bug introduced in the new version of the data
/// processing software had caused the artifacts." The analysis spans
/// multiple sites (telescope, HPC facility, desktop); the planted cause is
/// the new processing version.
pub struct SupernovaPipeline {
    space: Arc<ParamSpace>,
    truth: Truth,
}

impl SupernovaPipeline {
    /// Builds the multi-site astronomy pipeline.
    pub fn new() -> Self {
        let space = ParamSpace::builder()
            .categorical("telescope_site", ["cerro_tololo", "mauna_kea"])
            .ordinal("processing_version", [31, 32, 40]) // 3.1, 3.2, 4.0
            .categorical("calibration", ["standard", "extended"])
            .categorical("detector_band", ["g", "r", "i", "z"])
            .ordinal("coadd_depth", [1, 3, 5, 10])
            .build();
        let version = space.by_name("processing_version").unwrap();
        let truth = Truth::new(
            &space,
            Dnf::new(vec![Conjunction::new(vec![Predicate::eq(version, 40)])]),
        );
        SupernovaPipeline { space, truth }
    }

    /// Ground truth for scoring.
    pub fn truth(&self) -> &Truth {
        &self.truth
    }

    /// Artifact score of the visualization (higher = more artifacts); the
    /// evaluation threshold is 0.3.
    pub fn artifact_score(&self, instance: &Instance) -> f64 {
        if self.truth.fails(instance) {
            return 0.85; // the v4.0 regression
        }
        let depth = instance.get(self.space.by_name("coadd_depth").unwrap());
        // Shallow co-adds are noisier but stay under the threshold.
        if depth == &Value::from(1) {
            0.22
        } else {
            0.08
        }
    }
}

impl Default for SupernovaPipeline {
    fn default() -> Self {
        Self::new()
    }
}

impl Pipeline for SupernovaPipeline {
    fn space(&self) -> &Arc<ParamSpace> {
        &self.space
    }

    fn execute(&self, instance: &Instance) -> Result<EvalResult, PipelineError> {
        Ok(EvalResult::from_score_at_most(
            self.artifact_score(instance),
            0.3,
        ))
    }

    fn cost(&self, instance: &Instance) -> SimTime {
        // Telescope + HPC + desktop stages; deeper co-adds cost more.
        let depth = instance.get(self.space.by_name("coadd_depth").unwrap());
        let d = depth.as_f64().unwrap_or(1.0);
        SimTime::from_mins(30.0 + 6.0 * d)
    }

    fn name(&self) -> &str {
        "supernova-visualization (multi-site)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enterprise_cause_is_the_feed_change() {
        let p = EnterpriseAnalyticsPipeline::new();
        for inst in p.space().instances() {
            assert_eq!(
                p.execute(&inst).unwrap().outcome.is_fail(),
                p.truth().fails(&inst)
            );
        }
        assert_eq!(p.truth().len(), 1);
        let frac = p.truth().failure_fraction(p.space());
        assert!((frac - 1.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn supernova_cause_is_the_version() {
        let p = SupernovaPipeline::new();
        for inst in p.space().instances() {
            assert_eq!(
                p.execute(&inst).unwrap().outcome.is_fail(),
                p.truth().fails(&inst)
            );
        }
        assert_eq!(p.truth().len(), 1);
        // One of three versions is buggy.
        let frac = p.truth().failure_fraction(p.space());
        assert!((frac - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn healthy_configurations_pass() {
        let p = EnterpriseAnalyticsPipeline::new();
        let inst = Instance::from_pairs(
            p.space(),
            [
                ("data_provider", "internal".into()),
                ("feed_resolution", "monthly".into()),
                ("forecast_model", "prophet".into()),
                ("feature_window_months", 12.into()),
                ("seasonality", "additive".into()),
            ],
        );
        assert!(p.execute(&inst).unwrap().outcome.is_succeed());

        let sn = SupernovaPipeline::new();
        let inst = Instance::from_pairs(
            sn.space(),
            [
                ("telescope_site", "mauna_kea".into()),
                ("processing_version", 32.into()),
                ("calibration", "standard".into()),
                ("detector_band", "r".into()),
                ("coadd_depth", 5.into()),
            ],
        );
        assert!(sn.execute(&inst).unwrap().outcome.is_succeed());
    }

    #[test]
    fn costs_are_site_realistic() {
        let sn = SupernovaPipeline::new();
        let shallow = Instance::from_pairs(
            sn.space(),
            [
                ("telescope_site", "mauna_kea".into()),
                ("processing_version", 32.into()),
                ("calibration", "standard".into()),
                ("detector_band", "r".into()),
                ("coadd_depth", 1.into()),
            ],
        );
        let deep = shallow.with(sn.space().by_name("coadd_depth").unwrap(), 10.into());
        assert!(sn.cost(&deep).secs() > sn.cost(&shallow).secs());
    }
}
