//! # bugdoc-pipelines
//!
//! The real-world computational pipelines of the BugDoc evaluation
//! (paper §5.3), plus the two motivating scenarios from the introduction,
//! as deterministic simulators with planted root causes and exact ground
//! truth (the substitutions are documented in `DESIGN.md` §5):
//!
//! * [`MlPipeline`] — the Figure-1 classification pipeline (Tables 1–2);
//! * [`DataPolygamyPipeline`] — crash analysis over the 12-parameter
//!   Data Polygamy experiment (20 min/instance);
//! * [`GanPipeline`] — SAGAN/CIFAR-10 training with an FID threshold for
//!   mode collapse (6 parameters × 5 values, ~10 h/instance);
//! * [`DbSherlockDataset`] — labeled TPC-C anomaly logs over 15 bucketed
//!   statistics × 8 buckets, replayed historically with a 50/25/25 split;
//! * [`EnterpriseAnalyticsPipeline`], [`SupernovaPipeline`] — the intro
//!   anecdotes.

#![warn(missing_docs)]

mod data_polygamy;
mod dbsherlock;
mod gan;
mod intro;
mod mlpipe;

pub use data_polygamy::DataPolygamyPipeline;
pub use dbsherlock::{AnomalyProblem, DbSherlockConfig, DbSherlockDataset, LogRecord};
pub use gan::{GanPipeline, FID_THRESHOLD};
pub use intro::{EnterpriseAnalyticsPipeline, SupernovaPipeline};
pub use mlpipe::{MlPipeline, SCORE_THRESHOLD};
