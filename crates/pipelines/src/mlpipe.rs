//! The Figure-1 machine-learning classification pipeline.
//!
//! "The pipeline reads a dataset, splits it into training and test subsets,
//! creates and executes an estimator, and computes the F-measure score using
//! 10-fold cross-validation" (paper §1). The provenance of Figure 1 and the
//! worked Example 1 (Tables 1 and 2) pin down the response surface this
//! simulator reproduces:
//!
//! * gradient boosting scores low on Iris and Digits but high on Images;
//! * decision trees work well on Iris and Digits; logistic regression is
//!   high on Iris;
//! * library version 2.0 carries a regression that drags every score below
//!   the 0.6 threshold (0.3 under decision trees, 0.2 otherwise — Table 2).
//!
//! Ground truth (both causes are parameter-disjoint, so `R(CP)` is exact):
//! `(Library Version = 2.0) ∨ (Estimator = Gradient Boosting ∧ Dataset ≠ Images)`.

use bugdoc_core::{
    Comparator, Conjunction, Dnf, EvalResult, Instance, ParamSpace, Predicate, ProvenanceStore,
    Value,
};
use bugdoc_engine::{Pipeline, PipelineError, SimTime};
use bugdoc_synth::Truth;
use std::sync::Arc;

/// The evaluation threshold of Example 1: succeed iff score ≥ 0.6.
pub const SCORE_THRESHOLD: f64 = 0.6;

/// The Figure-1 pipeline simulator.
pub struct MlPipeline {
    space: Arc<ParamSpace>,
    truth: Truth,
}

impl MlPipeline {
    /// Builds the pipeline with the paper's parameter universe.
    pub fn new() -> Self {
        let space = ParamSpace::builder()
            .categorical("Dataset", ["Iris", "Digits", "Images"])
            .categorical(
                "Estimator",
                ["Logistic Regression", "Decision Tree", "Gradient Boosting"],
            )
            .ordinal("Library Version", [1.0, 2.0])
            .build();
        let ds = space.by_name("Dataset").unwrap();
        let est = space.by_name("Estimator").unwrap();
        let v = space.by_name("Library Version").unwrap();
        let truth = Truth::new(
            &space,
            Dnf::new(vec![
                Conjunction::new(vec![Predicate::new(v, Comparator::Eq, 2.0)]),
                Conjunction::new(vec![
                    Predicate::eq(est, "Gradient Boosting"),
                    Predicate::new(ds, Comparator::Neq, "Images"),
                ]),
            ]),
        );
        MlPipeline { space, truth }
    }

    /// The planted ground truth (for scoring experiments).
    pub fn truth(&self) -> &Truth {
        &self.truth
    }

    /// The deterministic cross-validation score of a configuration.
    pub fn score(&self, instance: &Instance) -> f64 {
        let ds = self.space.by_name("Dataset").unwrap();
        let est = self.space.by_name("Estimator").unwrap();
        let v = self.space.by_name("Library Version").unwrap();
        let dataset = instance.get(ds);
        let estimator = instance.get(est);

        // The version-2.0 regression dominates everything (Table 2).
        if instance.get(v) == &Value::float(2.0) {
            return if estimator == &Value::from("Decision Tree") {
                0.3
            } else {
                0.2
            };
        }
        match (estimator.to_string().as_str(), dataset.to_string().as_str()) {
            ("Logistic Regression", "Iris") => 0.9,
            ("Logistic Regression", "Digits") => 0.8,
            ("Logistic Regression", "Images") => 0.7,
            ("Decision Tree", _) => 0.8,
            ("Gradient Boosting", "Images") => 0.85,
            ("Gradient Boosting", _) => 0.2,
            _ => unreachable!("unknown configuration"),
        }
    }

    /// The paper's Table 1: the initial (given) set of pipeline instances.
    pub fn table1_history(&self) -> ProvenanceStore {
        let mut prov = ProvenanceStore::new(self.space.clone());
        for (d, e, v) in [
            ("Iris", "Logistic Regression", 1.0),
            ("Digits", "Decision Tree", 1.0),
            ("Iris", "Gradient Boosting", 2.0),
        ] {
            let inst = self.instance(d, e, v);
            let eval = self.execute(&inst).expect("simulator never fails to run");
            prov.record(inst, eval);
        }
        prov
    }

    /// Convenience constructor for an instance.
    pub fn instance(&self, dataset: &str, estimator: &str, version: f64) -> Instance {
        Instance::from_pairs(
            &self.space,
            [
                ("Dataset", dataset.into()),
                ("Estimator", estimator.into()),
                ("Library Version", version.into()),
            ],
        )
    }
}

impl Default for MlPipeline {
    fn default() -> Self {
        MlPipeline::new()
    }
}

impl Pipeline for MlPipeline {
    fn space(&self) -> &Arc<ParamSpace> {
        &self.space
    }

    fn execute(&self, instance: &Instance) -> Result<EvalResult, PipelineError> {
        Ok(EvalResult::from_score_at_least(
            self.score(instance),
            SCORE_THRESHOLD,
        ))
    }

    fn cost(&self, _instance: &Instance) -> SimTime {
        // Training + 10-fold cross-validation on small datasets: minutes.
        SimTime::from_mins(5.0)
    }

    fn name(&self) -> &str {
        "ml-classification (Figure 1)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_scores_match_paper() {
        let p = MlPipeline::new();
        assert_eq!(p.score(&p.instance("Iris", "Logistic Regression", 1.0)), 0.9);
        assert_eq!(p.score(&p.instance("Digits", "Decision Tree", 1.0)), 0.8);
        assert_eq!(p.score(&p.instance("Iris", "Gradient Boosting", 2.0)), 0.2);
    }

    #[test]
    fn table2_new_instances_match_paper() {
        let p = MlPipeline::new();
        // The three instances Shortcut creates in Example 1, with the scores
        // Table 2 lists.
        assert_eq!(p.score(&p.instance("Digits", "Gradient Boosting", 2.0)), 0.2);
        assert_eq!(p.score(&p.instance("Digits", "Decision Tree", 2.0)), 0.3);
        assert_eq!(p.score(&p.instance("Digits", "Decision Tree", 1.0)), 0.8);
    }

    #[test]
    fn intro_observations_hold() {
        let p = MlPipeline::new();
        // "gradient boosting leads to low scores for two of the datasets
        // (Iris and Digits), but it has a high score for Images".
        assert!(p.score(&p.instance("Iris", "Gradient Boosting", 1.0)) < SCORE_THRESHOLD);
        assert!(p.score(&p.instance("Digits", "Gradient Boosting", 1.0)) < SCORE_THRESHOLD);
        assert!(p.score(&p.instance("Images", "Gradient Boosting", 1.0)) >= SCORE_THRESHOLD);
        // "decision trees work well for both the Iris and Digits datasets".
        assert!(p.score(&p.instance("Iris", "Decision Tree", 1.0)) >= SCORE_THRESHOLD);
        assert!(p.score(&p.instance("Digits", "Decision Tree", 1.0)) >= SCORE_THRESHOLD);
        // "logistic regression leads to a high score for Iris".
        assert!(p.score(&p.instance("Iris", "Logistic Regression", 1.0)) >= SCORE_THRESHOLD);
    }

    #[test]
    fn evaluation_agrees_with_ground_truth_everywhere() {
        let p = MlPipeline::new();
        for inst in p.space.instances() {
            let failed = p.execute(&inst).unwrap().outcome.is_fail();
            assert_eq!(
                failed,
                p.truth().fails(&inst),
                "disagreement at {}",
                inst.display(&p.space)
            );
        }
    }

    #[test]
    fn ground_truth_has_two_causes() {
        let p = MlPipeline::new();
        assert_eq!(p.truth().len(), 2);
    }

    #[test]
    fn table1_history_layout() {
        let p = MlPipeline::new();
        let prov = p.table1_history();
        assert_eq!(prov.len(), 3);
        assert_eq!(prov.failing().count(), 1);
        let tsv = prov.to_tsv();
        assert!(tsv.contains("Iris\tGradient Boosting\t2\t0.2\tfail"));
    }
}
