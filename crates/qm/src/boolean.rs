//! Classic (binary) Quine–McCluskey minimization.
//!
//! BugDoc simplifies the disjunction-of-conjunctions output of Debugging
//! Decision Trees with the Quine–McCluskey algorithm (paper §4, citing
//! Huang 2014). This module is the textbook binary algorithm: prime-implicant
//! generation by pairwise merging, then cover selection via essential primes
//! and Petrick's method (exact for small charts, greedy beyond).
//!
//! Root causes over multi-valued parameter domains are minimized by the
//! domain-aware generalization in [`crate::mv`]; this binary version is used
//! for boolean sub-problems and as a differential-testing oracle.

use std::collections::BTreeSet;

/// A cube over `n` boolean variables: `bits` carries variable polarities,
/// `mask` marks don't-care positions (1 = don't care).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cube {
    /// Variable polarities (meaningful only where `mask` is 0).
    pub bits: u32,
    /// Don't-care positions.
    pub mask: u32,
}

impl Cube {
    /// A fully specified cube (a minterm).
    pub fn minterm(bits: u32) -> Self {
        Cube { bits, mask: 0 }
    }

    /// True if the cube covers the minterm.
    pub fn covers(&self, minterm: u32) -> bool {
        (minterm & !self.mask) == (self.bits & !self.mask)
    }

    /// Attempts the QM merge: two cubes with identical masks differing in
    /// exactly one specified bit combine into one cube with that bit as a
    /// don't-care.
    pub fn merge(&self, other: &Cube) -> Option<Cube> {
        if self.mask != other.mask {
            return None;
        }
        let diff = (self.bits ^ other.bits) & !self.mask;
        if diff.count_ones() == 1 {
            Some(Cube {
                bits: self.bits & !diff,
                mask: self.mask | diff,
            })
        } else {
            None
        }
    }

    /// Number of literals (specified positions) among the first `n_vars`.
    pub fn literals(&self, n_vars: u32) -> u32 {
        n_vars - (self.mask & mask_n(n_vars)).count_ones()
    }

    /// Renders like `1-0` (variable 0 leftmost).
    pub fn render(&self, n_vars: u32) -> String {
        (0..n_vars)
            .map(|i| {
                if self.mask >> i & 1 == 1 {
                    '-'
                } else if self.bits >> i & 1 == 1 {
                    '1'
                } else {
                    '0'
                }
            })
            .collect()
    }
}

fn mask_n(n: u32) -> u32 {
    if n >= 32 {
        u32::MAX
    } else {
        (1u32 << n) - 1
    }
}

/// Generates all prime implicants of the function whose on-set is `on` and
/// whose don't-care set is `dc` (both lists of minterms over `n_vars`
/// variables).
pub fn prime_implicants(n_vars: u32, on: &[u32], dc: &[u32]) -> Vec<Cube> {
    assert!(n_vars <= 24, "binary QM limited to 24 variables");
    let mut current: BTreeSet<Cube> = on
        .iter()
        .chain(dc.iter())
        .map(|&m| Cube::minterm(m & mask_n(n_vars)))
        .collect();
    let mut primes: BTreeSet<Cube> = BTreeSet::new();

    while !current.is_empty() {
        let cubes: Vec<Cube> = current.iter().copied().collect();
        let mut merged_flags = vec![false; cubes.len()];
        let mut next: BTreeSet<Cube> = BTreeSet::new();
        for i in 0..cubes.len() {
            for j in (i + 1)..cubes.len() {
                if let Some(m) = cubes[i].merge(&cubes[j]) {
                    merged_flags[i] = true;
                    merged_flags[j] = true;
                    next.insert(m);
                }
            }
        }
        for (i, cube) in cubes.iter().enumerate() {
            if !merged_flags[i] {
                primes.insert(*cube);
            }
        }
        current = next;
    }
    primes.into_iter().collect()
}

/// Minimizes the function: returns a minimal (fewest-cubes, then
/// fewest-literals) subset of prime implicants covering every on-set minterm.
/// Exact when the reduced chart has ≤ `EXACT_LIMIT` primes (Petrick's
/// method); greedy set-cover otherwise.
pub fn minimize(n_vars: u32, on: &[u32], dc: &[u32]) -> Vec<Cube> {
    let on: Vec<u32> = {
        let mut v: Vec<u32> = on.iter().map(|&m| m & mask_n(n_vars)).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    if on.is_empty() {
        return Vec::new();
    }
    let primes = prime_implicants(n_vars, &on, dc);

    // Chart: for each on-set minterm, which primes cover it.
    let coverers: Vec<Vec<usize>> = on
        .iter()
        .map(|&m| {
            (0..primes.len())
                .filter(|&p| primes[p].covers(m))
                .collect()
        })
        .collect();

    // Essential primes: sole coverer of some minterm.
    let mut chosen: BTreeSet<usize> = BTreeSet::new();
    for cov in &coverers {
        if cov.len() == 1 {
            chosen.insert(cov[0]);
        }
    }
    let mut uncovered: Vec<usize> = (0..on.len())
        .filter(|&i| !coverers[i].iter().any(|p| chosen.contains(p)))
        .collect();

    const EXACT_LIMIT: usize = 16;
    let remaining_primes: BTreeSet<usize> = uncovered
        .iter()
        .flat_map(|&i| coverers[i].iter().copied())
        .collect();

    if !uncovered.is_empty() {
        if remaining_primes.len() <= EXACT_LIMIT {
            // Petrick: exhaustive search over subsets of the remaining primes,
            // smallest cube count first, then fewest literals.
            let remaining: Vec<usize> = remaining_primes.into_iter().collect();
            let mut best: Option<(usize, u32, Vec<usize>)> = None;
            for subset in 0u32..(1 << remaining.len()) {
                let picked: Vec<usize> = remaining
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| subset >> k & 1 == 1)
                    .map(|(_, &p)| p)
                    .collect();
                let covers_all = uncovered
                    .iter()
                    .all(|&i| coverers[i].iter().any(|p| picked.contains(p)));
                if covers_all {
                    let lits: u32 = picked.iter().map(|&p| primes[p].literals(n_vars)).sum();
                    let candidate = (picked.len(), lits, picked.clone());
                    if best
                        .as_ref()
                        .map(|b| (candidate.0, candidate.1) < (b.0, b.1))
                        .unwrap_or(true)
                    {
                        best = Some(candidate);
                    }
                }
            }
            for p in best.expect("primes cover the on-set by construction").2 {
                chosen.insert(p);
            }
        } else {
            // Greedy: repeatedly take the prime covering the most uncovered
            // minterms (fewest literals breaks ties).
            while !uncovered.is_empty() {
                let best = (0..primes.len())
                    .filter(|p| !chosen.contains(p))
                    .max_by_key(|&p| {
                        let gain = uncovered
                            .iter()
                            .filter(|&&i| coverers[i].contains(&p))
                            .count();
                        (gain, std::cmp::Reverse(primes[p].literals(n_vars)))
                    })
                    .expect("primes cover the on-set by construction");
                chosen.insert(best);
                uncovered.retain(|&i| !coverers[i].contains(&best));
            }
        }
    }

    chosen.into_iter().map(|p| primes[p]).collect()
}

/// Evaluates a cover on a minterm (true iff some cube covers it).
pub fn cover_evaluates(cover: &[Cube], minterm: u32) -> bool {
    cover.iter().any(|c| c.covers(minterm))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Checks a cover is semantically equal to the on-set (modulo dc).
    fn assert_equivalent(n_vars: u32, on: &[u32], dc: &[u32], cover: &[Cube]) {
        let on_set: BTreeSet<u32> = on.iter().copied().collect();
        let dc_set: BTreeSet<u32> = dc.iter().copied().collect();
        for m in 0..(1u32 << n_vars) {
            let val = cover_evaluates(cover, m);
            if on_set.contains(&m) {
                assert!(val, "minterm {m} must be covered");
            } else if !dc_set.contains(&m) {
                assert!(!val, "minterm {m} must not be covered");
            }
        }
    }

    #[test]
    fn textbook_example() {
        // f(a,b,c,d) with on-set {4,8,10,11,12,15}, dc {9,14} — the classic
        // Wikipedia example; minimal cover has 3 cubes.
        let on = [4, 8, 10, 11, 12, 15];
        let dc = [9, 14];
        let cover = minimize(4, &on, &dc);
        assert_equivalent(4, &on, &dc, &cover);
        assert!(cover.len() <= 3, "got {} cubes", cover.len());
    }

    #[test]
    fn single_variable_function() {
        // f(a) = a  (on-set {1}).
        let cover = minimize(1, &[1], &[]);
        assert_eq!(cover.len(), 1);
        assert_eq!(cover[0].render(1), "1");
    }

    #[test]
    fn tautology_merges_to_empty_cube() {
        // All minterms on: the cover is the single all-dont-care cube.
        let on: Vec<u32> = (0..8).collect();
        let cover = minimize(3, &on, &[]);
        assert_eq!(cover.len(), 1);
        assert_eq!(cover[0].mask, 0b111);
        assert_equivalent(3, &on, &[], &cover);
    }

    #[test]
    fn empty_on_set() {
        assert!(minimize(3, &[], &[]).is_empty());
    }

    #[test]
    fn xor_cannot_merge() {
        // XOR: no two on-set minterms are adjacent; cover = the minterms.
        let on = [0b01, 0b10];
        let cover = minimize(2, &on, &[]);
        assert_eq!(cover.len(), 2);
        assert_equivalent(2, &on, &[], &cover);
    }

    #[test]
    fn redundant_input_terms_removed() {
        // f = a ∨ (a ∧ b): on-set {10,11,01×? } over (a,b) -> {2,3} ∪ {3} = {2,3}
        // bit0 = a? Use bits: a=bit1, b=bit0. a=1 -> {2,3}. Minimal: single cube a=1.
        let on = [2, 3];
        let cover = minimize(2, &on, &[]);
        assert_eq!(cover.len(), 1);
        assert_eq!(cover[0].render(2), "-1"); // var0 dontcare, var1=1
        assert_equivalent(2, &on, &[], &cover);
    }

    #[test]
    fn cube_merge_rules() {
        let a = Cube::minterm(0b000);
        let b = Cube::minterm(0b001);
        let m = a.merge(&b).unwrap();
        assert_eq!(m.mask, 0b001);
        assert!(m.covers(0b000) && m.covers(0b001));
        // Non-adjacent minterms don't merge.
        assert!(a.merge(&Cube::minterm(0b011)).is_none());
        // Different masks don't merge.
        assert!(m.merge(&a).is_none());
    }

    #[test]
    fn dont_cares_enable_larger_cubes() {
        // on {0}, dc {1}: can merge to a single cube over 1 var.
        let cover = minimize(1, &[0], &[1]);
        assert_eq!(cover.len(), 1);
        assert_eq!(cover[0].mask & 1, 1);
    }

    #[test]
    fn greedy_path_exercised_on_larger_chart() {
        // 6 variables, on-set = all minterms with odd parity of the low 3
        // bits: merges happen within high-bit groups; just check equivalence.
        let on: Vec<u32> = (0..64u32)
            .filter(|m| (m & 0b111).count_ones() % 2 == 1)
            .collect();
        let cover = minimize(6, &on, &[]);
        assert_equivalent(6, &on, &[], &cover);
    }

    #[test]
    fn literals_count() {
        let c = Cube {
            bits: 0b101,
            mask: 0b010,
        };
        assert_eq!(c.literals(3), 2);
        assert_eq!(c.render(3), "1-1");
    }
}
