//! # bugdoc-qm
//!
//! Quine–McCluskey logic minimization for the BugDoc reproduction
//! (paper §4: explanation simplification).
//!
//! * [`boolean`] — the textbook binary algorithm (prime implicants via cube
//!   merging; cover via essential primes + Petrick's method).
//! * [`mv`] — the multi-valued generalization over parameter domains, used to
//!   simplify the disjunction-of-conjunctions output of Debugging Decision
//!   Trees into concise root causes.

#![warn(missing_docs)]

pub mod boolean;
pub mod mv;

pub use mv::{cause_covered_by, minimize_dnf, simplify_conjunction};
