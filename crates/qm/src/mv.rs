//! Multi-valued logic minimization of root-cause DNFs.
//!
//! Debugging Decision Trees returns disjunctions of conjunctions that "may
//! contain redundancies, which we simplify using the Quine-McCluskey
//! algorithm. The goal is to create concise explanations" (paper §4). Root
//! causes range over *multi-valued* parameter domains, so this module
//! implements the multi-valued generalization of Quine–McCluskey (in the
//! style of Espresso-MV): each conjunction canonicalizes to a *cube* — a
//! product of per-parameter allowed sets — and the algorithm applies
//!
//! 1. **absorption** (drop cubes implied by another cube),
//! 2. **merging** (two cubes equal on all but one parameter union into one —
//!    the MV analogue of the QM adjacency merge),
//! 3. **expansion** (raise a cube's allowed sets, or drop a parameter
//!    entirely, while staying inside the original function), and
//! 4. **irredundant cover** (drop cubes covered by the union of the rest),
//!
//! all of which preserve the denoted instance set exactly. Binary inputs
//! reduce to classic Quine–McCluskey (see the differential test against
//! [`crate::boolean`]).

use bugdoc_core::{CanonicalCause, Conjunction, Dnf, ParamSpace};

/// A dense cube: one allowed-mask per parameter (full masks included, unlike
/// [`CanonicalCause`] which drops them).
type DenseCube = Vec<Vec<bool>>;

fn to_dense(space: &ParamSpace, canon: &CanonicalCause) -> DenseCube {
    space
        .ids()
        .map(|p| match canon.mask(p) {
            Some(m) => m.to_vec(),
            None => vec![true; space.domain(p).len()],
        })
        .collect()
}

fn from_dense(space: &ParamSpace, cube: &DenseCube) -> CanonicalCause {
    let mut masks = std::collections::BTreeMap::new();
    for (i, mask) in cube.iter().enumerate() {
        masks.insert(bugdoc_core::ParamId(i as u32), mask.clone());
    }
    CanonicalCause::from_masks(space, masks)
}

fn is_empty_cube(cube: &DenseCube) -> bool {
    cube.iter().any(|m| m.iter().all(|&b| !b))
}

fn is_full_cube(cube: &DenseCube) -> bool {
    cube.iter().all(|m| m.iter().all(|&b| b))
}

/// `a ⊆ b` as product sets (per-parameter mask inclusion).
fn cube_implies(a: &DenseCube, b: &DenseCube) -> bool {
    a.iter()
        .zip(b.iter())
        .all(|(ma, mb)| ma.iter().zip(mb.iter()).all(|(&x, &y)| !x || y))
}

fn cubes_intersect(a: &DenseCube, b: &DenseCube) -> bool {
    a.iter()
        .zip(b.iter())
        .all(|(ma, mb)| ma.iter().zip(mb.iter()).any(|(&x, &y)| x && y))
}

/// The parameter index where `a` and `b` differ, provided they are equal on
/// every other parameter (the MV merge precondition).
fn differs_in_exactly_one(a: &DenseCube, b: &DenseCube) -> Option<usize> {
    let mut found = None;
    for (p, (ma, mb)) in a.iter().zip(b.iter()).enumerate() {
        if ma != mb {
            if found.is_some() {
                return None;
            }
            found = Some(p);
        }
    }
    found
}

/// Is `cube ⊆ ⋃ cover`? Decided by recursive splitting: pick a covering cube
/// `c` that intersects `cube`; if `cube ⊆ c` we are done, otherwise split
/// `cube` along one parameter into the part inside `c` and the part outside,
/// and recurse on both. Each split strictly shrinks the cube, so the
/// recursion terminates.
fn covered_by(cube: &DenseCube, cover: &[DenseCube]) -> bool {
    if is_empty_cube(cube) {
        return true;
    }
    let candidate = cover.iter().find(|c| cubes_intersect(cube, c));
    let Some(c) = candidate else {
        return false;
    };
    if cube_implies(cube, c) {
        return true;
    }
    // A parameter where cube sticks out of c must exist (cube ⊄ c).
    let p = cube
        .iter()
        .zip(c.iter())
        .position(|(ma, mb)| ma.iter().zip(mb.iter()).any(|(&x, &y)| x && !y))
        .expect("cube not contained in c, so some mask sticks out");
    let mut inside = cube.clone();
    let mut outside = cube.clone();
    for i in 0..cube[p].len() {
        inside[p][i] = cube[p][i] && c[p][i];
        outside[p][i] = cube[p][i] && !c[p][i];
    }
    covered_by(&inside, cover) && covered_by(&outside, cover)
}

/// Drops cubes implied by another cube (keeping the first of equal pairs).
fn absorb(cubes: &mut Vec<DenseCube>) {
    let mut i = 0;
    while i < cubes.len() {
        let absorbed = (0..cubes.len())
            .any(|j| j != i && cube_implies(&cubes[i], &cubes[j]) && !(j > i && cubes[i] == cubes[j]));
        if absorbed {
            cubes.remove(i);
        } else {
            i += 1;
        }
    }
}

/// Repeatedly merges cube pairs that differ in exactly one parameter.
fn merge_pass(cubes: &mut Vec<DenseCube>) {
    loop {
        let mut merged = None;
        'outer: for i in 0..cubes.len() {
            for j in (i + 1)..cubes.len() {
                if let Some(p) = differs_in_exactly_one(&cubes[i], &cubes[j]) {
                    let mut m = cubes[i].clone();
                    for k in 0..m[p].len() {
                        m[p][k] = cubes[i][p][k] || cubes[j][p][k];
                    }
                    merged = Some((i, j, m));
                    break 'outer;
                }
            }
        }
        match merged {
            Some((i, j, m)) => {
                cubes.remove(j);
                cubes.remove(i);
                cubes.push(m);
            }
            None => break,
        }
    }
}

/// Expands each cube against the reference function `f`: first tries to free
/// whole parameters (set the mask full), then individual values, keeping
/// every expansion that stays inside `⋃ f`. Freed parameters disappear from
/// the final conjunction — this is what turns a verbose tree path into a
/// minimal cause.
fn expand_pass(cubes: &mut [DenseCube], f: &[DenseCube]) {
    for idx in 0..cubes.len() {
        let mut cube = cubes[idx].clone();
        for p in 0..cube.len() {
            // Whole-parameter expansion.
            let saved = cube[p].clone();
            if saved.iter().any(|&b| !b) {
                cube[p].iter_mut().for_each(|b| *b = true);
                if !covered_by(&cube, f) {
                    cube[p] = saved.clone();
                    // Per-value expansion.
                    for v in 0..cube[p].len() {
                        if !cube[p][v] {
                            cube[p][v] = true;
                            if !covered_by(&cube, f) {
                                cube[p][v] = false;
                            }
                        }
                    }
                }
            }
        }
        cubes[idx] = cube;
    }
}

/// Removes cubes covered by the union of the remaining cubes.
fn irredundant_pass(cubes: &mut Vec<DenseCube>) {
    let mut i = 0;
    while i < cubes.len() {
        let rest: Vec<DenseCube> = cubes
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, c)| c.clone())
            .collect();
        if covered_by(&cubes[i], &rest) {
            cubes.remove(i);
        } else {
            i += 1;
        }
    }
}

/// Minimizes a DNF of root causes over a finite parameter space. The result
/// denotes exactly the same set of instances (a property-tested invariant)
/// with no redundant conjunct, no conjunct expressible more simply, and no
/// pair of conjuncts mergeable into one.
pub fn minimize_dnf(space: &ParamSpace, dnf: &Dnf) -> Dnf {
    let mut cubes: Vec<DenseCube> = dnf
        .conjuncts()
        .iter()
        .map(|c| to_dense(space, &c.canonicalize(space)))
        .filter(|c| !is_empty_cube(c))
        .collect();

    if cubes.iter().any(is_full_cube) {
        // Some conjunct is a tautology: the whole DNF is ⊤.
        return Dnf::new(vec![Conjunction::top()]);
    }
    if cubes.is_empty() {
        return Dnf::bottom();
    }

    let f = cubes.clone(); // the reference function, fixed
    absorb(&mut cubes);
    merge_pass(&mut cubes);
    expand_pass(&mut cubes, &f);
    if cubes.iter().any(is_full_cube) {
        return Dnf::new(vec![Conjunction::top()]);
    }
    absorb(&mut cubes);
    merge_pass(&mut cubes);
    irredundant_pass(&mut cubes);

    Dnf::new(
        cubes
            .iter()
            .map(|c| from_dense(space, c).to_conjunction(space))
            .collect(),
    )
}

/// Semantic coverage check exposed for ground-truth computations: is every
/// instance satisfying `cause` covered by some member of `cover`? This is
/// exactly the *definitive root cause* test against a known failure DNF
/// (paper Def. 4): `cause ⊨ ⋁ cover`.
pub fn cause_covered_by(
    space: &ParamSpace,
    cause: &CanonicalCause,
    cover: &[CanonicalCause],
) -> bool {
    let cube = to_dense(space, cause);
    let cover: Vec<DenseCube> = cover.iter().map(|c| to_dense(space, c)).collect();
    covered_by(&cube, &cover)
}

/// Simplifies a single conjunction to its shortest equivalent form over the
/// space (e.g. `n ≠ 1 ∧ n ≠ 2` over `{1..5}` becomes `n > 2`). Returns `None`
/// if the conjunction is unsatisfiable over the space.
pub fn simplify_conjunction(space: &ParamSpace, conj: &Conjunction) -> Option<Conjunction> {
    let canon = conj.canonicalize(space);
    if canon.is_unsatisfiable() {
        return None;
    }
    Some(canon.to_conjunction(space))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bugdoc_core::{Comparator, ParamSpace, Predicate};
    use std::sync::Arc;

    fn space() -> Arc<ParamSpace> {
        ParamSpace::builder()
            .ordinal("n", [1, 2, 3, 4, 5])
            .categorical("color", ["red", "green", "blue"])
            .build()
    }

    fn assert_equivalent(space: &ParamSpace, a: &Dnf, b: &Dnf) {
        for inst in space.instances() {
            assert_eq!(
                a.satisfied_by(&inst),
                b.satisfied_by(&inst),
                "disagree on {}:\n a={}\n b={}",
                inst.display(space),
                a.display(space),
                b.display(space)
            );
        }
    }

    #[test]
    fn absorbs_subsumed_conjunct() {
        let s = space();
        let n = s.by_name("n").unwrap();
        let color = s.by_name("color").unwrap();
        // (n > 3) ∨ (n > 3 ∧ color = red) -> (n > 3).
        let dnf = Dnf::new(vec![
            Conjunction::new(vec![Predicate::new(n, Comparator::Gt, 3)]),
            Conjunction::new(vec![
                Predicate::new(n, Comparator::Gt, 3),
                Predicate::eq(color, "red"),
            ]),
        ]);
        let min = minimize_dnf(&s, &dnf);
        assert_eq!(min.len(), 1);
        assert_equivalent(&s, &dnf, &min);
    }

    #[test]
    fn merges_adjacent_values() {
        let s = space();
        let n = s.by_name("n").unwrap();
        // (n = 4) ∨ (n = 5) -> (n > 3).
        let dnf = Dnf::new(vec![
            Conjunction::new(vec![Predicate::eq(n, 4)]),
            Conjunction::new(vec![Predicate::eq(n, 5)]),
        ]);
        let min = minimize_dnf(&s, &dnf);
        assert_eq!(min.len(), 1);
        assert_eq!(min.conjuncts()[0].predicates().len(), 1);
        assert_equivalent(&s, &dnf, &min);
    }

    #[test]
    fn merges_categorical_cover_to_top_param() {
        let s = space();
        let n = s.by_name("n").unwrap();
        let color = s.by_name("color").unwrap();
        // (n=5 ∧ color=red) ∨ (n=5 ∧ color=green) ∨ (n=5 ∧ color=blue) -> n=5.
        let dnf = Dnf::new(
            ["red", "green", "blue"]
                .into_iter()
                .map(|c| {
                    Conjunction::new(vec![Predicate::eq(n, 5), Predicate::eq(color, c)])
                })
                .collect(),
        );
        let min = minimize_dnf(&s, &dnf);
        assert_eq!(min.len(), 1);
        assert_eq!(min.conjuncts()[0].predicates().len(), 1);
        assert_equivalent(&s, &dnf, &min);
    }

    #[test]
    fn expansion_drops_redundant_parameter() {
        let s = space();
        let n = s.by_name("n").unwrap();
        let color = s.by_name("color").unwrap();
        // (n=5 ∧ color=red) ∨ (n=5 ∧ color≠red): color is irrelevant.
        let dnf = Dnf::new(vec![
            Conjunction::new(vec![Predicate::eq(n, 5), Predicate::eq(color, "red")]),
            Conjunction::new(vec![
                Predicate::eq(n, 5),
                Predicate::new(color, Comparator::Neq, "red"),
            ]),
        ]);
        let min = minimize_dnf(&s, &dnf);
        assert_eq!(min.len(), 1);
        let c = &min.conjuncts()[0];
        assert_eq!(c.predicates().len(), 1);
        assert_eq!(c.predicates()[0].param, n);
        assert_equivalent(&s, &dnf, &min);
    }

    #[test]
    fn keeps_genuinely_disjoint_causes() {
        let s = space();
        let n = s.by_name("n").unwrap();
        let color = s.by_name("color").unwrap();
        // The paper's Example 4 shape: (n = 4) ∨ (n < 3 ∧ color ≠ blue).
        let dnf = Dnf::new(vec![
            Conjunction::new(vec![Predicate::eq(n, 4)]),
            Conjunction::new(vec![
                Predicate::new(n, Comparator::Le, 2),
                Predicate::new(color, Comparator::Neq, "blue"),
            ]),
        ]);
        let min = minimize_dnf(&s, &dnf);
        assert_eq!(min.len(), 2);
        assert_equivalent(&s, &dnf, &min);
    }

    #[test]
    fn tautology_collapses_to_top() {
        let s = space();
        let color = s.by_name("color").unwrap();
        // color=red ∨ color≠red ≡ ⊤.
        let dnf = Dnf::new(vec![
            Conjunction::new(vec![Predicate::eq(color, "red")]),
            Conjunction::new(vec![Predicate::new(color, Comparator::Neq, "red")]),
        ]);
        let min = minimize_dnf(&s, &dnf);
        assert_eq!(min.len(), 1);
        assert!(min.conjuncts()[0].is_empty());
    }

    #[test]
    fn unsatisfiable_conjuncts_dropped() {
        let s = space();
        let n = s.by_name("n").unwrap();
        let dnf = Dnf::new(vec![Conjunction::new(vec![
            Predicate::new(n, Comparator::Le, 2),
            Predicate::new(n, Comparator::Gt, 3),
        ])]);
        assert!(minimize_dnf(&s, &dnf).is_empty());
        assert!(minimize_dnf(&s, &Dnf::bottom()).is_empty());
    }

    #[test]
    fn irredundant_removes_union_covered_cube() {
        let s = space();
        let n = s.by_name("n").unwrap();
        // (n ≤ 2) ∨ (n > 2) ∨ (n = 3): third is covered by the union (and the
        // first two merge into ⊤).
        let dnf = Dnf::new(vec![
            Conjunction::new(vec![Predicate::new(n, Comparator::Le, 2)]),
            Conjunction::new(vec![Predicate::new(n, Comparator::Gt, 2)]),
            Conjunction::new(vec![Predicate::eq(n, 3)]),
        ]);
        let min = minimize_dnf(&s, &dnf);
        assert_eq!(min.len(), 1);
        assert!(min.conjuncts()[0].is_empty());
    }

    #[test]
    fn simplify_single_conjunction() {
        let s = space();
        let n = s.by_name("n").unwrap();
        let c = Conjunction::new(vec![
            Predicate::new(n, Comparator::Neq, 1),
            Predicate::new(n, Comparator::Neq, 2),
        ]);
        let simplified = simplify_conjunction(&s, &c).unwrap();
        assert_eq!(simplified.predicates().len(), 1);
        assert_eq!(simplified.predicates()[0].cmp, Comparator::Gt);

        let unsat = Conjunction::new(vec![
            Predicate::new(n, Comparator::Le, 1),
            Predicate::new(n, Comparator::Gt, 2),
        ]);
        assert!(simplify_conjunction(&s, &unsat).is_none());
    }

    #[test]
    fn covered_by_splitting_logic() {
        let s = space();
        let n = s.by_name("n").unwrap();
        // cube n∈{2,3,4} covered by {n≤3} ∪ {n>3}? yes.
        let cube = to_dense(
            &s,
            &Conjunction::new(vec![
                Predicate::new(n, Comparator::Gt, 1),
                Predicate::new(n, Comparator::Le, 4),
            ])
            .canonicalize(&s),
        );
        let a = to_dense(
            &s,
            &Conjunction::new(vec![Predicate::new(n, Comparator::Le, 3)]).canonicalize(&s),
        );
        let b = to_dense(
            &s,
            &Conjunction::new(vec![Predicate::new(n, Comparator::Gt, 3)]).canonicalize(&s),
        );
        assert!(covered_by(&cube, &[a.clone(), b]));
        assert!(!covered_by(&cube, &[a]));
    }

    /// One instance from the paper's running theme: minimization of the DDT
    /// output over the Figure-1 space.
    #[test]
    fn figure1_style_minimization() {
        let s = ParamSpace::builder()
            .categorical("Dataset", ["Iris", "Digits", "Images"])
            .categorical("Estimator", ["LR", "DT", "GB"])
            .ordinal("Version", [1, 2])
            .build();
        let ds = s.by_name("Dataset").unwrap();
        let est = s.by_name("Estimator").unwrap();
        // (Dataset=Iris ∧ Estimator=GB) ∨ (Dataset=Digits ∧ Estimator=GB)
        // -> Dataset ≠ Images ∧ Estimator = GB.
        let dnf = Dnf::new(vec![
            Conjunction::new(vec![Predicate::eq(ds, "Iris"), Predicate::eq(est, "GB")]),
            Conjunction::new(vec![Predicate::eq(ds, "Digits"), Predicate::eq(est, "GB")]),
        ]);
        let min = minimize_dnf(&s, &dnf);
        assert_eq!(min.len(), 1);
        let c = &min.conjuncts()[0];
        assert_eq!(c.predicates().len(), 2);
        assert_equivalent(&s, &dnf, &min);
        let txt = min.display(&s).to_string();
        assert!(txt.contains("Dataset ≠ Images"), "got {txt}");
    }
}
