//! Property tests for both Quine–McCluskey implementations:
//! * binary QM against a brute-force truth-table oracle;
//! * multi-valued minimization against exhaustive instance enumeration;
//! * cross-validation: boolean functions minimized by both implementations
//!   must denote the same function.

use bugdoc_core::{Comparator, Conjunction, Dnf, ParamId, ParamSpace, Predicate};
use bugdoc_qm::{boolean, minimize_dnf, simplify_conjunction};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Binary QM: the minimized cover computes exactly the on-set.
    #[test]
    fn boolean_qm_equivalent_to_truth_table(
        n_vars in 1u32..=5,
        on_bits in any::<u32>(),
    ) {
        let size = 1u32 << n_vars;
        let on: Vec<u32> = (0..size).filter(|&m| on_bits >> (m % 32) & 1 == 1).collect();
        let cover = boolean::minimize(n_vars, &on, &[]);
        for m in 0..size {
            let expected = on.contains(&m);
            prop_assert_eq!(
                boolean::cover_evaluates(&cover, m),
                expected,
                "minterm {} of {} vars",
                m,
                n_vars
            );
        }
    }

    /// Binary QM: don't-cares never cause an off-set minterm to be covered.
    #[test]
    fn boolean_qm_respects_off_set(
        n_vars in 2u32..=4,
        on_bits in any::<u16>(),
        dc_bits in any::<u16>(),
    ) {
        let size = 1u32 << n_vars;
        let on: Vec<u32> = (0..size).filter(|&m| on_bits >> m & 1 == 1).collect();
        let dc: Vec<u32> = (0..size)
            .filter(|&m| dc_bits >> m & 1 == 1 && !on.contains(&m))
            .collect();
        let cover = boolean::minimize(n_vars, &on, &dc);
        for m in 0..size {
            if on.contains(&m) {
                prop_assert!(boolean::cover_evaluates(&cover, m));
            } else if !dc.contains(&m) {
                prop_assert!(!boolean::cover_evaluates(&cover, m));
            }
        }
    }

    /// Binary QM produces at most as many cubes as minterms.
    #[test]
    fn boolean_qm_never_grows(n_vars in 1u32..=5, on_bits in any::<u32>()) {
        let size = 1u32 << n_vars;
        let on: Vec<u32> = (0..size).filter(|&m| on_bits >> (m % 32) & 1 == 1).collect();
        let cover = boolean::minimize(n_vars, &on, &[]);
        prop_assert!(cover.len() <= on.len().max(1));
    }
}

/// A boolean space: every parameter is a 2-value ordinal.
fn bool_space(n: usize) -> Arc<ParamSpace> {
    let mut builder = ParamSpace::builder();
    for i in 0..n {
        builder = builder.boolean(format!("b{i}"));
    }
    builder.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cross-validation: a random boolean function minimized by the binary
    /// algorithm and by the multi-valued algorithm (as single-minterm
    /// conjunctions) denotes the same function.
    #[test]
    fn mv_agrees_with_boolean_on_boolean_functions(
        n_vars in 2usize..=4,
        on_bits in any::<u16>(),
    ) {
        let space = bool_space(n_vars);
        let size = 1u32 << n_vars;
        let on: Vec<u32> = (0..size).filter(|&m| on_bits >> m & 1 == 1).collect();

        // The MV route: one conjunction per on-set minterm.
        let dnf = Dnf::new(
            on.iter()
                .map(|&m| {
                    Conjunction::new(
                        (0..n_vars)
                            .map(|i| {
                                Predicate::new(
                                    ParamId(i as u32),
                                    Comparator::Eq,
                                    (m >> i & 1) == 1,
                                )
                            })
                            .collect(),
                    )
                })
                .collect(),
        );
        let mv_min = minimize_dnf(&space, &dnf);

        // The boolean route.
        let bool_cover = boolean::minimize(n_vars as u32, &on, &[]);

        // Same function, instance by instance.
        for m in 0..size {
            let inst = bugdoc_core::Instance::new(
                (0..n_vars)
                    .map(|i| bugdoc_core::Value::from((m >> i & 1) == 1))
                    .collect(),
            );
            prop_assert_eq!(
                mv_min.satisfied_by(&inst),
                boolean::cover_evaluates(&bool_cover, m)
            );
        }
        // And comparable conciseness: the MV cover is no larger than the
        // number of prime-implicant cubes the boolean cover chose... both
        // minimal covers can differ in shape, so only sanity-bound it.
        prop_assert!(mv_min.len() <= on.len().max(1));
    }

    /// simplify_conjunction is semantics-preserving and idempotent.
    #[test]
    fn simplify_conjunction_preserving(
        n_vars in 2usize..=4,
        picks in proptest::collection::vec((0usize..4, 0usize..2, 0usize..4), 1..=4),
    ) {
        let space = bool_space(n_vars);
        let preds: Vec<Predicate> = picks
            .into_iter()
            .map(|(p, v, c)| {
                Predicate::new(
                    ParamId((p % n_vars) as u32),
                    Comparator::ALL[c],
                    v == 1,
                )
            })
            .collect();
        let conj = Conjunction::new(preds);
        match simplify_conjunction(&space, &conj) {
            None => {
                // Unsatisfiable: no instance satisfies it.
                for inst in space.instances() {
                    prop_assert!(!conj.satisfied_by(&inst));
                }
            }
            Some(simplified) => {
                for inst in space.instances() {
                    prop_assert_eq!(conj.satisfied_by(&inst), simplified.satisfied_by(&inst));
                }
                // Idempotent.
                let again = simplify_conjunction(&space, &simplified).unwrap();
                prop_assert_eq!(again, simplified);
            }
        }
    }
}
