//! A minimal blocking client for the `bugdoc serve` wire protocol, used by
//! `bugdoc connect` and by the integration tests. One [`Client`] drives one
//! connection — and therefore at most one session at a time.

use crate::protocol::{DiagnoseParams, BLOCK_TAGS};
use bugdoc_algorithms::{DdtMode, Strategy};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

/// One reply from the daemon: the text after `OK `, plus the counted body
/// lines when the tag carries one (`report`, `stats`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// The head line with `OK ` stripped, e.g. `session 3`.
    pub head: String,
    /// Body lines for block replies, empty otherwise.
    pub body: Vec<String>,
}

/// A connected protocol client.
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Client {
    /// Connects to a daemon's socket.
    pub fn connect(socket: &Path) -> Result<Client, String> {
        let stream = UnixStream::connect(socket)
            .map_err(|e| format!("cannot connect to {}: {e}", socket.display()))?;
        let read_half = stream
            .try_clone()
            .map_err(|e| format!("cannot split the connection: {e}"))?;
        Ok(Client {
            reader: BufReader::new(read_half),
            writer: stream,
        })
    }

    /// Sends one command line and reads the reply; `ERR` replies come back
    /// as `Err` with the daemon's message.
    pub fn request(&mut self, line: &str) -> Result<Reply, String> {
        self.transact(&format!("{line}\n"))
    }

    /// Creates a session; returns its id.
    pub fn session_new(&mut self) -> Result<u64, String> {
        let reply = self.request("SESSION NEW")?;
        parse_session_id(&reply.head)
    }

    /// Re-attaches to an existing session.
    pub fn session_attach(&mut self, id: u64) -> Result<u64, String> {
        let reply = self.request(&format!("SESSION ATTACH {id}"))?;
        parse_session_id(&reply.head)
    }

    /// Binds a spec (the raw text the one-shot CLI would read from a file)
    /// to the session, optionally reserving executions from the shared
    /// budget. Returns the daemon's ack head, e.g. `spec shared sessions=2`.
    pub fn spec(&mut self, text: &str, reserve: usize) -> Result<String, String> {
        let lines: Vec<&str> = text.lines().collect();
        if lines.is_empty() {
            return Err("empty spec".to_string());
        }
        let mut payload = if reserve > 0 {
            format!("SPEC {} reserve={reserve}\n", lines.len())
        } else {
            format!("SPEC {}\n", lines.len())
        };
        for line in lines {
            payload.push_str(line);
            payload.push('\n');
        }
        Ok(self.transact(&payload)?.head)
    }

    /// Runs a diagnosis; returns the report (the cause section, identical
    /// to the first lines of a one-shot `bugdoc diagnose` run).
    pub fn diagnose(&mut self, params: DiagnoseParams) -> Result<String, String> {
        let algorithm = match params.strategy {
            Strategy::Combined => "combined",
            Strategy::StackedShortcutOnly => "stacked",
            Strategy::DdtOnly => "ddt",
        };
        let mode = match params.mode {
            DdtMode::FindOne => "one",
            DdtMode::FindAll => "all",
        };
        let reply = self.request(&format!(
            "DIAGNOSE algorithm={algorithm} mode={mode} seed={}",
            params.seed
        ))?;
        Ok(join_lines(&reply.body))
    }

    /// Fetches session + shared counters as `key value` pairs.
    pub fn stats(&mut self) -> Result<Vec<(String, u64)>, String> {
        let reply = self.request("STATS")?;
        let mut pairs = Vec::new();
        for line in &reply.body {
            let mut tokens = line.split_whitespace();
            let (Some(key), Some(value)) = (tokens.next(), tokens.next()) else {
                return Err(format!("malformed stats line {line:?}"));
            };
            let value = value
                .parse()
                .map_err(|_| format!("malformed stats line {line:?}"))?;
            pairs.push((key.to_string(), value));
        }
        Ok(pairs)
    }

    /// Fetches the daemon-wide Prometheus exposition, one line per entry.
    pub fn metrics(&mut self) -> Result<Vec<String>, String> {
        Ok(self.request("METRICS")?.body)
    }

    /// Fetches the most recent flight-recorder events, oldest first, as
    /// `<seq> <t_us> <kind> <a0> <a1> <a2>` lines.
    pub fn flight(&mut self) -> Result<Vec<String>, String> {
        Ok(self.request("FLIGHT")?.body)
    }

    fn transact(&mut self, payload: &str) -> Result<Reply, String> {
        self.writer
            .write_all(payload.as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("connection lost: {e}"))?;
        let head = self.read_line()?;
        if let Some(message) = head.strip_prefix("ERR ") {
            return Err(message.to_string());
        }
        let Some(head) = head.strip_prefix("OK ") else {
            return Err(format!("malformed reply {head:?}"));
        };
        let mut body = Vec::new();
        let mut tokens = head.split_whitespace();
        if let Some(tag) = tokens.next() {
            if BLOCK_TAGS.contains(&tag) {
                let count: usize = tokens
                    .next()
                    .and_then(|n| n.parse().ok())
                    .ok_or_else(|| format!("malformed block head {head:?}"))?;
                for _ in 0..count {
                    body.push(self.read_line()?);
                }
            }
        }
        Ok(Reply {
            head: head.to_string(),
            body,
        })
    }

    fn read_line(&mut self) -> Result<String, String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Err("daemon closed the connection".to_string()),
            Ok(_) => Ok(line.trim_end_matches(['\n', '\r']).to_string()),
            Err(e) => Err(format!("connection lost: {e}")),
        }
    }
}

fn parse_session_id(head: &str) -> Result<u64, String> {
    head.strip_prefix("session ")
        .and_then(|id| id.trim().parse().ok())
        .ok_or_else(|| format!("malformed session reply {head:?}"))
}

fn join_lines(lines: &[String]) -> String {
    let mut out = String::new();
    for line in lines {
        out.push_str(line);
        out.push('\n');
    }
    out
}
