//! The daemon: a Unix-domain-socket accept loop fanning connections out to
//! per-connection handler threads over one shared [`SessionManager`].
//!
//! The loop is built for a clean, signal-driven exit: the listener is
//! nonblocking and polled against a caller-owned shutdown flag (the CLI
//! flips it from a `SIGTERM` handler, a client can flip it with
//! `SHUTDOWN`), handlers read with a short timeout so they observe the
//! flag between requests, and only after every handler has quiesced are
//! the shared executors closed — durable ones snapshot their provenance
//! and release their directory lock, so a killed daemon warm-starts.
//!
//! Handler threads never touch files or spawn processes; everything
//! blocking-but-bounded is a socket read with a timeout. Lint rule W007
//! keeps it that way.

use crate::protocol::{self, Command, MAX_LINE_BYTES};
use crate::session::SessionManager;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How long the accept loop sleeps when no connection is pending, and how
/// long a handler blocks in a read before re-polling the shutdown flag.
const POLL: Duration = Duration::from_millis(20);

/// A running `bugdoc serve` daemon (minus the socket binding and signal
/// handling, which belong to the front end).
pub struct Daemon {
    listener: UnixListener,
    manager: Arc<SessionManager>,
}

/// What a daemon did over its lifetime, reported at exit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DaemonSummary {
    /// Connections accepted.
    pub connections: usize,
    /// Durable stores snapshot-and-closed at shutdown.
    pub executors_closed: usize,
}

impl Daemon {
    /// A daemon serving `listener` with sessions managed by `manager`.
    pub fn over(listener: UnixListener, manager: Arc<SessionManager>) -> Daemon {
        Daemon { listener, manager }
    }

    /// The shared session manager (for in-process inspection in tests).
    pub fn manager(&self) -> &Arc<SessionManager> {
        &self.manager
    }

    /// Serves until `shutdown` is set (by a signal handler, another thread,
    /// or a client's `SHUTDOWN`), then drains handlers and closes every
    /// shared executor. Blocks the calling thread for the daemon's life.
    pub fn run(&self, shutdown: &AtomicBool) -> Result<DaemonSummary, String> {
        self.listener
            .set_nonblocking(true)
            .map_err(|e| format!("cannot poll the listener: {e}"))?;
        let connections = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            while !shutdown.load(Ordering::SeqCst) {
                match self.listener.accept() {
                    Ok((stream, _addr)) => {
                        connections.fetch_add(1, Ordering::SeqCst);
                        let manager = Arc::clone(&self.manager);
                        scope.spawn(move || serve_connection(stream, &manager, shutdown));
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    // Listener torn down under us (socket unlinked): drain.
                    Err(_) => break,
                }
            }
            // Make handlers exit promptly even when the accept loop broke
            // on a listener error rather than the flag.
            shutdown.store(true, Ordering::SeqCst);
            // `scope` joins every handler here: past this point no request
            // is in flight, so closing the executors below is race-free.
        });
        let executors_closed = self.manager.shutdown_all()?;
        Ok(DaemonSummary {
            connections: connections.load(Ordering::SeqCst),
            executors_closed,
        })
    }
}

enum ReadLine {
    /// A complete (or EOF-terminated) line is in the buffer.
    Line,
    /// Clean end of stream.
    Eof,
    /// Shutdown, oversized line, or a hard socket error: drop the peer.
    Dead,
}

/// Reads one `\n`-terminated line into `buf`, tolerating read timeouts (the
/// partial prefix accumulates across them) so the shutdown flag is polled
/// between waits. The caller owns clearing `buf` between lines.
fn read_wire_line(
    reader: &mut BufReader<UnixStream>,
    buf: &mut Vec<u8>,
    shutdown: &AtomicBool,
) -> ReadLine {
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return ReadLine::Dead;
        }
        match reader.read_until(b'\n', buf) {
            Ok(0) if buf.is_empty() => return ReadLine::Eof,
            Ok(_) => return ReadLine::Line,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if buf.len() > MAX_LINE_BYTES {
                    return ReadLine::Dead;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return ReadLine::Dead,
        }
    }
}

fn serve_connection(stream: UnixStream, manager: &SessionManager, shutdown: &AtomicBool) {
    // The timeout is what lets a parked handler notice shutdown.
    let _ = stream.set_read_timeout(Some(POLL));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut session: Option<u64> = None;

    let mut buf = Vec::new();
    loop {
        buf.clear();
        match read_wire_line(&mut reader, &mut buf, shutdown) {
            ReadLine::Line => {}
            ReadLine::Eof | ReadLine::Dead => break,
        }
        let line = String::from_utf8_lossy(&buf).into_owned();
        let reply = match protocol::parse_command(&line) {
            Err(e) => protocol::render_err(&e),
            Ok(command) => {
                match dispatch(command, manager, &mut session, &mut reader, shutdown) {
                    Some(reply) => reply,
                    None => break,
                }
            }
        };
        if writer.write_all(reply.as_bytes()).is_err() || writer.flush().is_err() {
            break;
        }
    }
    // The connection is gone but the session survives: detach, not close.
    // A reconnecting client continues it with `SESSION ATTACH`.
    if let Some(id) = session {
        let _ = manager.detach(id);
    }
}

/// Executes one command; `None` means the peer vanished mid-request and the
/// connection should be dropped without a reply.
fn dispatch(
    command: Command,
    manager: &SessionManager,
    session: &mut Option<u64>,
    reader: &mut BufReader<UnixStream>,
    shutdown: &AtomicBool,
) -> Option<String> {
    let reply = match command {
        Command::Ping => "OK pong\n".to_string(),
        Command::SessionNew => match *session {
            Some(id) => {
                protocol::render_err(&format!("this connection drives session {id} (DETACH first)"))
            }
            None => {
                let id = manager.create();
                *session = Some(id);
                format!("OK session {id}\n")
            }
        },
        Command::SessionAttach(id) => match *session {
            Some(bound) => protocol::render_err(&format!(
                "this connection drives session {bound} (DETACH first)"
            )),
            None => match manager.attach(id) {
                Ok(()) => {
                    *session = Some(id);
                    format!("OK session {id}\n")
                }
                Err(e) => protocol::render_err(&e),
            },
        },
        Command::Spec { lines, reserve } => {
            // The counted block must be consumed even if the bind will be
            // refused, or the stream desynchronizes.
            let mut text = String::new();
            let mut buf = Vec::new();
            for _ in 0..lines {
                buf.clear();
                match read_wire_line(reader, &mut buf, shutdown) {
                    ReadLine::Line => {
                        text.push_str(&String::from_utf8_lossy(&buf));
                        if !text.ends_with('\n') {
                            text.push('\n');
                        }
                    }
                    ReadLine::Eof | ReadLine::Dead => return None,
                }
            }
            match *session {
                None => protocol::render_err("no session (SESSION NEW first)"),
                Some(id) => match manager.set_spec(id, &text, reserve) {
                    Ok(ack) => format!(
                        "OK spec {} sessions={}\n",
                        if ack.shared { "shared" } else { "fresh" },
                        ack.sessions
                    ),
                    Err(e) => protocol::render_err(&e),
                },
            }
        }
        Command::Diagnose(params) => match *session {
            None => protocol::render_err("no session (SESSION NEW first)"),
            Some(id) => match manager.diagnose(id, params) {
                Ok(report) => protocol::render_block("report", &report),
                Err(e) => protocol::render_err(&e),
            },
        },
        Command::Stats => match *session {
            None => protocol::render_err("no session (SESSION NEW first)"),
            Some(id) => match manager.stats(id) {
                Ok(body) => protocol::render_block("stats", &body),
                Err(e) => protocol::render_err(&e),
            },
        },
        // Daemon-wide observability: no session needed, so an operator's
        // scraper can poll without joining the session lifecycle.
        Command::Metrics => protocol::render_block("metrics", &manager.render_metrics()),
        Command::Flight => protocol::render_block("flight", &protocol::render_flight()),
        Command::Detach => match session.take() {
            None => protocol::render_err("no session to detach"),
            Some(id) => match manager.detach(id) {
                Ok(()) => "OK detached\n".to_string(),
                Err(e) => protocol::render_err(&e),
            },
        },
        Command::Close => match session.take() {
            None => protocol::render_err("no session to close"),
            Some(id) => match manager.close(id) {
                Ok(()) => "OK closed\n".to_string(),
                Err(e) => protocol::render_err(&e),
            },
        },
        Command::Shutdown => {
            // Reply first (the caller writes it), then the read loop sees
            // the flag and winds the connection down.
            shutdown.store(true, Ordering::SeqCst);
            "OK shutting-down\n".to_string()
        }
    };
    Some(reply)
}
