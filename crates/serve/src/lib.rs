//! # bugdoc-serve
//!
//! The diagnosis service daemon behind `bugdoc serve`: a long-lived process
//! serving concurrent debugging sessions over **one shared executor per
//! pipeline spec**, so sessions debugging the same pipeline share
//! executions, provenance, the result cache, and the durable store —
//! instead of each one-shot CLI run paying the full execution bill alone.
//!
//! The crate splits front-end-agnostically:
//!
//! * [`protocol`] — the line-delimited wire protocol: pure parse/render,
//!   no I/O.
//! * [`session`] — the [`SessionManager`]: session lifecycle
//!   (create/attach/detach/close), spec-keyed executor sharing, and
//!   admission control via per-session budget reservations.
//! * [`daemon`] — the Unix-domain-socket accept loop and per-connection
//!   handlers, built around a caller-owned shutdown flag for clean
//!   `SIGTERM` drains.
//! * [`client`] — a small blocking client (used by `bugdoc connect` and
//!   the integration tests).
//!
//! The front end (the CLI) owns everything this crate deliberately lacks:
//! spec parsing, socket binding/unlinking, and signal handling. Handlers
//! here never touch the filesystem or spawn processes — lint rule W007
//! enforces that the only blocking a session handler does is a
//! short-timeout socket read, so one slow disk or subprocess can never
//! freeze the control plane. Pipeline execution itself happens on the
//! executor the factory built, outside any manager lock.

#![warn(missing_docs)]

pub mod client;
pub mod daemon;
pub mod protocol;
pub mod session;

pub use client::{Client, Reply};
pub use daemon::{Daemon, DaemonSummary};
pub use protocol::{parse_command, Command, DiagnoseParams};
pub use session::{ExecutorFactory, SessionManager, SpecAck};
