//! The `bugdoc serve` wire protocol: line-delimited text.
//!
//! Every request is a single `\n`-terminated line (`SPEC` is followed by a
//! counted block of raw spec lines). Every reply starts with `OK` or
//! `ERR <message>`; replies whose tag is in [`BLOCK_TAGS`] carry a counted
//! body — `OK report 3` is followed by exactly 3 lines — so a client always
//! knows how much to read without sniffing.
//!
//! ```text
//! PING                          -> OK pong
//! SESSION NEW                   -> OK session <id>
//! SESSION ATTACH <id>           -> OK session <id>
//! SPEC <n> [reserve=<k>]        -> OK spec fresh|shared sessions=<m>
//!   (followed by n raw spec lines; reserve=<k> pre-admits k executions
//!    against the shared budget and fails the bind if they cannot fit)
//! DIAGNOSE [algorithm=combined|stacked|ddt] [mode=one|all] [seed=<n>]
//!                               -> OK report <n>  + n report lines
//! STATS                         -> OK stats <n>   + n `key value` lines
//! METRICS                       -> OK metrics <n> + n Prometheus text lines
//! FLIGHT                        -> OK flight <n>  + n recent-event lines
//! DETACH                        -> OK detached  (session survives)
//! CLOSE                         -> OK closed    (reservation released)
//! SHUTDOWN                      -> OK shutting-down  (daemon drains)
//! ```
//!
//! This module is pure parsing and rendering — no I/O — so it unit-tests
//! without a socket and stays trivially within the serve crate's
//! no-blocking-syscalls contract (lint rule W007).

use bugdoc_algorithms::{DdtMode, Strategy};

/// Upper bound on the `SPEC <n>` counted block, so a hostile client cannot
/// make a handler buffer an unbounded document.
pub const MAX_SPEC_LINES: usize = 4096;

/// Upper bound on a single accumulated wire line; a connection exceeding it
/// is dropped rather than buffered further.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Reply tags whose `OK <tag> <n>` head line is followed by `n` body lines.
pub const BLOCK_TAGS: &[&str] = &["report", "stats", "metrics", "flight"];

/// Most recent flight events a `FLIGHT` reply carries. Far below the ring
/// capacity so a dump stays a skim, not a download.
pub const FLIGHT_DUMP_MAX: usize = 256;

/// Settings a session passes to one `DIAGNOSE` request. Defaults mirror the
/// one-shot CLI: the paper's combined strategy, find-all, seed 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiagnoseParams {
    /// Algorithm selection (`algorithm=`).
    pub strategy: Strategy,
    /// FindOne or FindAll (`mode=`).
    pub mode: DdtMode,
    /// RNG seed (`seed=`).
    pub seed: u64,
}

impl Default for DiagnoseParams {
    fn default() -> Self {
        DiagnoseParams {
            strategy: Strategy::Combined,
            mode: DdtMode::FindAll,
            seed: 0,
        }
    }
}

/// A parsed request line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Liveness probe.
    Ping,
    /// Create a session and bind it to this connection.
    SessionNew,
    /// Re-bind an existing (detached) session to this connection.
    SessionAttach(u64),
    /// Bind the session to a pipeline spec; `lines` raw spec lines follow.
    Spec {
        /// Number of raw spec lines that follow this command line.
        lines: usize,
        /// Executions to pre-admit against the shared budget (0 = none).
        reserve: usize,
    },
    /// Run the diagnosis algorithms over the session's shared executor.
    Diagnose(DiagnoseParams),
    /// Report session-scoped and shared execution statistics.
    Stats,
    /// Render every telemetry metric as Prometheus text exposition
    /// (daemon-wide; needs no session).
    Metrics,
    /// Dump the most recent flight-recorder events (daemon-wide; needs no
    /// session).
    Flight,
    /// Unbind the session from this connection, keeping it alive.
    Detach,
    /// Destroy the session and release its budget reservation.
    Close,
    /// Ask the daemon to drain and exit.
    Shutdown,
}

/// Parses one request line. Keywords are case-sensitive (uppercase).
pub fn parse_command(line: &str) -> Result<Command, String> {
    let mut tokens = line.split_whitespace();
    let Some(keyword) = tokens.next() else {
        return Err("empty command".to_string());
    };
    let command = match keyword {
        "PING" => Command::Ping,
        "SESSION" => match tokens.next() {
            Some("NEW") => Command::SessionNew,
            Some("ATTACH") => {
                let id = tokens.next().ok_or("SESSION ATTACH needs a session id")?;
                Command::SessionAttach(
                    id.parse()
                        .map_err(|_| format!("session id must be an integer, got {id:?}"))?,
                )
            }
            _ => return Err("SESSION needs NEW or ATTACH <id>".to_string()),
        },
        "SPEC" => {
            let n = tokens.next().ok_or("SPEC needs a line count")?;
            let lines: usize = n
                .parse()
                .map_err(|_| format!("SPEC line count must be an integer, got {n:?}"))?;
            if lines == 0 || lines > MAX_SPEC_LINES {
                return Err(format!("SPEC line count must be 1..={MAX_SPEC_LINES}"));
            }
            let mut reserve = 0usize;
            for token in tokens.by_ref() {
                match token.split_once('=') {
                    Some(("reserve", value)) => {
                        reserve = value.parse().map_err(|_| {
                            format!("reserve needs an integer, got {value:?}")
                        })?;
                    }
                    _ => return Err(format!("unknown SPEC option {token:?}")),
                }
            }
            Command::Spec { lines, reserve }
        }
        "DIAGNOSE" => {
            let mut params = DiagnoseParams::default();
            for token in tokens.by_ref() {
                let Some((key, value)) = token.split_once('=') else {
                    return Err(format!("DIAGNOSE options are key=value, got {token:?}"));
                };
                match key {
                    "algorithm" => {
                        params.strategy = match value {
                            "combined" => Strategy::Combined,
                            "stacked" => Strategy::StackedShortcutOnly,
                            "ddt" => Strategy::DdtOnly,
                            other => return Err(format!("unknown algorithm {other:?}")),
                        }
                    }
                    "mode" => {
                        params.mode = match value {
                            "one" => DdtMode::FindOne,
                            "all" => DdtMode::FindAll,
                            other => return Err(format!("unknown mode {other:?}")),
                        }
                    }
                    "seed" => {
                        params.seed = value
                            .parse()
                            .map_err(|_| format!("seed needs an integer, got {value:?}"))?;
                    }
                    other => return Err(format!("unknown DIAGNOSE option {other:?}")),
                }
            }
            Command::Diagnose(params)
        }
        "STATS" => Command::Stats,
        "METRICS" => Command::Metrics,
        "FLIGHT" => Command::Flight,
        "DETACH" => Command::Detach,
        "CLOSE" => Command::Close,
        "SHUTDOWN" => Command::Shutdown,
        other => return Err(format!("unknown command {other:?}")),
    };
    if tokens.next().is_some() {
        return Err(format!("trailing tokens after {keyword}"));
    }
    Ok(command)
}

/// Renders the most recent flight-recorder events (at most
/// [`FLIGHT_DUMP_MAX`]), oldest first, one event per line:
/// `<seq> <t_us> <kind> <arg0> <arg1> <arg2>`. Pure in-memory rendering —
/// the ring read never blocks a recorder (and W007 keeps this handler off
/// files and subprocesses).
pub fn render_flight() -> String {
    let mut out = String::new();
    for ev in bugdoc_telemetry::flight_dump(FLIGHT_DUMP_MAX) {
        out.push_str(&format!(
            "{} {} {} {} {} {}\n",
            ev.seq,
            ev.t_us,
            ev.kind.name(),
            ev.args[0],
            ev.args[1],
            ev.args[2]
        ));
    }
    out
}

/// Renders an error reply. The message is flattened to one line so the
/// framing survives whatever text the failure carried.
pub fn render_err(message: &str) -> String {
    let flat = message.replace(['\n', '\r'], "; ");
    format!("ERR {}\n", flat.trim())
}

/// Renders an `OK <tag> <n>` head line followed by the body's `n` lines.
/// `tag` must be one of [`BLOCK_TAGS`], or the client will misframe.
pub fn render_block(tag: &str, body: &str) -> String {
    debug_assert!(BLOCK_TAGS.contains(&tag), "unframed block tag {tag:?}");
    let lines: Vec<&str> = body.lines().collect();
    let mut out = format!("OK {tag} {}\n", lines.len());
    for line in lines {
        out.push_str(line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commands_parse() {
        assert_eq!(parse_command("PING").unwrap(), Command::Ping);
        assert_eq!(parse_command("SESSION NEW").unwrap(), Command::SessionNew);
        assert_eq!(
            parse_command("SESSION ATTACH 7").unwrap(),
            Command::SessionAttach(7)
        );
        assert_eq!(
            parse_command("SPEC 3").unwrap(),
            Command::Spec { lines: 3, reserve: 0 }
        );
        assert_eq!(
            parse_command("SPEC 3 reserve=50").unwrap(),
            Command::Spec { lines: 3, reserve: 50 }
        );
        assert_eq!(
            parse_command("DIAGNOSE").unwrap(),
            Command::Diagnose(DiagnoseParams::default())
        );
        assert_eq!(
            parse_command("DIAGNOSE algorithm=ddt mode=one seed=9").unwrap(),
            Command::Diagnose(DiagnoseParams {
                strategy: Strategy::DdtOnly,
                mode: DdtMode::FindOne,
                seed: 9,
            })
        );
        assert_eq!(parse_command("STATS").unwrap(), Command::Stats);
        assert_eq!(parse_command("METRICS").unwrap(), Command::Metrics);
        assert_eq!(parse_command("FLIGHT").unwrap(), Command::Flight);
        assert_eq!(parse_command("DETACH").unwrap(), Command::Detach);
        assert_eq!(parse_command("CLOSE").unwrap(), Command::Close);
        assert_eq!(parse_command("SHUTDOWN").unwrap(), Command::Shutdown);
    }

    #[test]
    fn hostile_lines_are_errors_not_panics() {
        for line in [
            "",
            "   ",
            "ping",
            "SESSION",
            "SESSION DESTROY",
            "SESSION ATTACH",
            "SESSION ATTACH seven",
            "SESSION ATTACH 7 8",
            "SPEC",
            "SPEC zero",
            "SPEC 0",
            "SPEC 999999999",
            "SPEC 3 reserve=",
            "SPEC 3 reserve=lots",
            "SPEC 3 budget=5",
            "DIAGNOSE algorithm=magic",
            "DIAGNOSE mode=some",
            "DIAGNOSE seed=pi",
            "DIAGNOSE loudly",
            "DIAGNOSE algorithm=combined extra=1",
            "PING PONG",
            "STATS now",
            "METRICS all",
            "FLIGHT 10",
            "metrics",
            "SHUTDOWN -f",
            "\u{0}\u{1}",
        ] {
            assert!(parse_command(line).is_err(), "accepted {line:?}");
        }
    }

    #[test]
    fn err_rendering_is_single_line() {
        let rendered = render_err("first\nsecond\r\nthird");
        assert_eq!(rendered.matches('\n').count(), 1);
        assert!(rendered.starts_with("ERR "));
    }

    #[test]
    fn block_rendering_counts_lines() {
        let block = render_block("report", "a\nb\n");
        assert_eq!(block, "OK report 2\na\nb\n");
        let empty = render_block("stats", "");
        assert_eq!(empty, "OK stats 0\n");
    }
}
