//! Diagnosis sessions multiplexed over shared executors.
//!
//! The [`SessionManager`] is the daemon's heart: every session that binds
//! the same spec text shares one [`Executor`] — and therefore one result
//! cache, one provenance log, one budget, and one durable store. Two
//! engineers debugging the same pipeline stop paying for each other's
//! executions: whatever one session ran, the other's diagnosis answers from
//! provenance.
//!
//! Sessions outlive connections. A dropped connection *detaches* its
//! session (it can be re-attached by id); only `CLOSE` destroys a session
//! and releases its budget reservation. Executors are never evicted while
//! the daemon runs — a later session binding the same spec warm-starts from
//! everything learned so far — and are closed (snapshot + lock release for
//! durable ones) by [`SessionManager::shutdown_all`] at daemon exit.
//!
//! Admission control: a session may ask to *reserve* part of the shared
//! execution budget when it binds its spec. The reservation is CAS-admitted
//! against the executor's budget (see `Executor::try_reserve_session`), so
//! a daemon never accepts more concurrent debugging work than the budget
//! can cover; `CLOSE` (or re-binding) returns the reservation.

use crate::protocol::DiagnoseParams;
use bugdoc_algorithms::{diagnose, BugDocConfig};
use bugdoc_engine::{ExecStats, Executor};
use bugdoc_telemetry::EventKind;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Serve-layer telemetry handles, registered once per process.
struct ServeProbes {
    sessions_created: &'static bugdoc_telemetry::Counter,
    sessions_closed: &'static bugdoc_telemetry::Counter,
    diagnoses: &'static bugdoc_telemetry::Counter,
    diagnose_ns: &'static bugdoc_telemetry::Histogram,
}

fn probes() -> &'static ServeProbes {
    static P: OnceLock<ServeProbes> = OnceLock::new();
    P.get_or_init(|| ServeProbes {
        sessions_created: bugdoc_telemetry::counter(
            "bugdoc_serve_sessions_created_total",
            "Sessions ever created by this daemon",
        ),
        sessions_closed: bugdoc_telemetry::counter(
            "bugdoc_serve_sessions_closed_total",
            "Sessions explicitly closed (detached sessions stay alive)",
        ),
        diagnoses: bugdoc_telemetry::counter(
            "bugdoc_serve_diagnoses_total",
            "DIAGNOSE requests completed, successfully or not",
        ),
        diagnose_ns: bugdoc_telemetry::histogram(
            "bugdoc_serve_diagnose_ns",
            "End-to-end latency of one DIAGNOSE request (ns)",
        ),
    })
}

/// Whole microseconds since `started`, saturating (flight-event payload).
fn elapsed_us(started: Instant) -> u64 {
    let us = started.elapsed().as_micros();
    if us > u64::MAX as u128 { u64::MAX } else { us as u64 }
}

/// Builds an executor from raw spec text.
///
/// The daemon does not parse specs or spawn pipelines itself — the front
/// end injects its parser/builder, keeping this crate free of file and
/// process concerns (lint rule W007). The factory runs once per distinct
/// spec text; later sessions with the same text share the result.
pub type ExecutorFactory = dyn Fn(&str) -> Result<Executor, String> + Send + Sync;

/// One executor shared by every session that bound the same spec text.
struct SharedExecutor {
    exec: Executor,
    /// Sessions currently bound to this executor.
    sessions: AtomicUsize,
    /// Stable label for per-executor metrics (`executor="<index>"`), in
    /// creation order. Executors are never evicted while the daemon runs,
    /// so the label never changes or gets reused.
    index: usize,
    /// When this executor was built — per-executor uptime is the
    /// measurement substrate the idle-eviction follow-up needs.
    created_at: Instant,
}

/// A session's binding to a shared executor.
struct Bound {
    shared: Arc<SharedExecutor>,
    /// Shared-executor delta across this session's most recent `DIAGNOSE`
    /// (zero before the first one). Work other sessions did *during* that
    /// window is included — attribution on a shared executor is by time
    /// window, which is exactly what "my diagnosis cost N new executions"
    /// means when the whole point is that sessions share work.
    last: ExecStats,
    /// Budget slots this session holds via `try_reserve_session`.
    reserved: usize,
}

struct Session {
    /// Whether a connection currently drives this session.
    attached: bool,
    bound: Option<Bound>,
}

/// Outcome of binding a spec to a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecAck {
    /// True when the executor already existed (another session created it).
    pub shared: bool,
    /// Sessions bound to the executor after this bind, including this one.
    pub sessions: usize,
}

/// Create/attach/detach/close sessions and route their requests to shared
/// executors. All methods are `&self`; the manager is shared across handler
/// threads behind an `Arc`.
pub struct SessionManager {
    factory: Box<ExecutorFactory>,
    /// Spec text → the executor every matching session shares. Keyed by the
    /// trimmed text itself (not a hash), so distinct specs can never
    /// collide into sharing.
    executors: Mutex<HashMap<String, Arc<SharedExecutor>>>,
    sessions: Mutex<HashMap<u64, Session>>,
    next_id: AtomicU64,
}

impl SessionManager {
    /// A manager that builds executors with `factory`.
    pub fn new(factory: Box<ExecutorFactory>) -> Self {
        SessionManager {
            factory,
            executors: Mutex::new(HashMap::new()),
            sessions: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(0),
        }
    }

    /// Creates a fresh session, already attached to the calling connection.
    pub fn create(&self) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::SeqCst) + 1;
        self.sessions.lock().insert(
            id,
            Session {
                attached: true,
                bound: None,
            },
        );
        probes().sessions_created.inc();
        bugdoc_telemetry::event(EventKind::SessionCreated, id, 0, 0);
        id
    }

    /// Re-binds a detached session to a connection.
    pub fn attach(&self, id: u64) -> Result<(), String> {
        let mut sessions = self.sessions.lock();
        let session = sessions
            .get_mut(&id)
            .ok_or_else(|| format!("unknown session {id}"))?;
        if session.attached {
            return Err(format!("session {id} is already attached to a connection"));
        }
        session.attached = true;
        Ok(())
    }

    /// Unbinds a session from its connection; the session (and its
    /// reservation) survives for a later `SESSION ATTACH`.
    pub fn detach(&self, id: u64) -> Result<(), String> {
        let mut sessions = self.sessions.lock();
        let session = sessions
            .get_mut(&id)
            .ok_or_else(|| format!("unknown session {id}"))?;
        session.attached = false;
        Ok(())
    }

    /// Destroys a session, releasing its budget reservation. The shared
    /// executor stays resident: its provenance keeps serving other (and
    /// future) sessions until daemon shutdown.
    pub fn close(&self, id: u64) -> Result<(), String> {
        let session = self
            .sessions
            .lock()
            .remove(&id)
            .ok_or_else(|| format!("unknown session {id}"))?;
        if let Some(bound) = session.bound {
            release_bound(&bound);
        }
        probes().sessions_closed.inc();
        bugdoc_telemetry::event(EventKind::SessionClosed, id, 0, 0);
        Ok(())
    }

    /// Binds `text` to session `id`, creating the executor on first sight
    /// of this spec and sharing it afterwards. `reserve > 0` pre-admits
    /// that many executions against the shared budget, failing the bind if
    /// the budget cannot cover them. Re-binding releases the previous
    /// binding's reservation first.
    pub fn set_spec(&self, id: u64, text: &str, reserve: usize) -> Result<SpecAck, String> {
        let key = text.trim().to_string();
        // The executors lock is held across the factory call so two
        // sessions racing on the same new spec build it exactly once.
        // Construction can be slow (durable recovery), but it is a
        // once-per-spec cost on the bind path, never the request path.
        let (shared, fresh) = {
            let mut executors = self.executors.lock();
            match executors.get(&key) {
                Some(shared) => (Arc::clone(shared), false),
                None => {
                    let exec = (self.factory)(&key)?;
                    let shared = Arc::new(SharedExecutor {
                        exec,
                        sessions: AtomicUsize::new(0),
                        // Executors are only ever added while the daemon
                        // runs, so the map size is a stable creation index.
                        index: executors.len(),
                        created_at: Instant::now(),
                    });
                    executors.insert(key, Arc::clone(&shared));
                    (shared, true)
                }
            }
        };
        // Release any previous binding *before* admission, so a rebind's
        // new reservation is judged against a budget that no longer counts
        // its old one. A refused rebind leaves the session unbound.
        {
            let mut sessions = self.sessions.lock();
            let Some(session) = sessions.get_mut(&id) else {
                return Err(format!("unknown session {id}"));
            };
            if let Some(previous) = session.bound.take() {
                release_bound(&previous);
            }
        }
        if reserve > 0 && !shared.exec.try_reserve_session(reserve) {
            return Err(format!(
                "cannot admit session {id}: the execution budget cannot cover a \
                 reservation of {reserve} (remaining: {})",
                shared
                    .exec
                    .remaining_budget()
                    .map_or("unbounded".to_string(), |n| n.to_string()),
            ));
        }
        let mut sessions = self.sessions.lock();
        let Some(session) = sessions.get_mut(&id) else {
            if reserve > 0 {
                shared.exec.release_session(reserve);
            }
            return Err(format!("unknown session {id}"));
        };
        shared.sessions.fetch_add(1, Ordering::SeqCst);
        let peers = shared.sessions.load(Ordering::SeqCst);
        bugdoc_telemetry::event(EventKind::SpecBound, id, shared.index as u64, peers as u64);
        session.bound = Some(Bound {
            shared,
            last: ExecStats::default(),
            reserved: reserve,
        });
        Ok(SpecAck {
            shared: !fresh,
            sessions: peers,
        })
    }

    /// Runs the diagnosis algorithms for session `id` over its shared
    /// executor and returns the rendered cause report — byte-for-byte the
    /// cause section a one-shot CLI run prints, by construction
    /// (`BugDocConfig::front_end` + `Diagnosis::render_causes`).
    ///
    /// No manager lock is held while the pipeline executes: the executor is
    /// cloned out under the lock, then driven lock-free, so slow pipelines
    /// never stall other sessions' control traffic.
    pub fn diagnose(&self, id: u64, params: DiagnoseParams) -> Result<String, String> {
        let shared = self.bound_executor(id)?;
        let before = shared.exec.stats();
        let config = BugDocConfig::front_end(params.strategy, params.mode, params.seed);
        let started = Instant::now();
        bugdoc_telemetry::event(EventKind::DiagnoseStart, id, 0, 0);
        let outcome = diagnose(&shared.exec, &config).map_err(|e| e.to_string());
        let delta = shared.exec.stats().since(&before);
        probes().diagnoses.inc();
        probes().diagnose_ns.record_elapsed(started);
        bugdoc_telemetry::event(
            EventKind::DiagnoseEnd,
            id,
            elapsed_us(started),
            delta.new_executions as u64,
        );
        let diagnosis = outcome?;
        if let Some(bound) = self
            .sessions
            .lock()
            .get_mut(&id)
            .and_then(|session| session.bound.as_mut())
        {
            bound.last = delta;
        }
        Ok(diagnosis.render_causes(&shared.exec.space()))
    }

    /// Session-scoped (most recent `DIAGNOSE`) and shared execution
    /// counters for session `id`, as `key value` lines.
    pub fn stats(&self, id: u64) -> Result<String, String> {
        let (shared, delta) = {
            let sessions = self.sessions.lock();
            let bound = bound_of(&sessions, id)?;
            (Arc::clone(&bound.shared), bound.last)
        };
        let total = shared.exec.stats();
        let mut out = String::new();
        // Every ExecStats counter, session delta first, then the shared
        // totals — rendered from counter_fields() so the block can never
        // drift out of parity with the one-shot CLI summary (a wire test
        // asserts the key sets match).
        for (name, value) in delta.counter_fields() {
            let _ = writeln!(out, "session.{name} {value}");
        }
        for (name, value) in total.counter_fields() {
            let _ = writeln!(out, "shared.{name} {value}");
        }
        let _ = writeln!(
            out,
            "shared.provenance_runs {}",
            shared.exec.with_provenance_ref(|prov| prov.len())
        );
        let _ = writeln!(
            out,
            "shared.sessions {}",
            shared.sessions.load(Ordering::SeqCst)
        );
        let _ = writeln!(out, "shared.reserved {}", shared.exec.session_reserved());
        if let Some(remaining) = shared.exec.remaining_budget() {
            let _ = writeln!(out, "shared.remaining_budget {remaining}");
        }
        Ok(out)
    }

    /// Renders the daemon-wide telemetry view as Prometheus text
    /// exposition: every registered metric (store timings, serve counters,
    /// the engine's re-derivation histogram), the executor counters bridged
    /// at scrape time from each resident executor's [`ExecStats`], and
    /// per-executor session/run/uptime gauges. Entirely in-memory (W007:
    /// handlers never block on files), and nothing here holds a manager
    /// lock while reading executor stats.
    pub fn render_metrics(&self) -> String {
        let executors: Vec<Arc<SharedExecutor>> =
            self.executors.lock().values().map(Arc::clone).collect();
        let mut out = bugdoc_telemetry::render();

        // Scrape-time bridge: the executor's own counters stay on their
        // existing atomics (zero added cost on the cache-hit path) and are
        // summed across executors only here.
        let mut totals = ExecStats::default().counter_fields();
        for shared in &executors {
            let stats = shared.exec.stats();
            for (slot, (_, value)) in totals.iter_mut().zip(stats.counter_fields()) {
                slot.1 += value;
            }
        }
        for (name, value) in totals {
            let _ = writeln!(
                out,
                "# HELP bugdoc_executor_{name}_total ExecStats::{name}, summed over resident executors"
            );
            let _ = writeln!(out, "# TYPE bugdoc_executor_{name}_total counter");
            let _ = writeln!(out, "bugdoc_executor_{name}_total {value}");
        }

        // Per-executor gauges: the load signals an idle-eviction policy
        // (ROADMAP follow-up) would act on.
        let families: [(&str, &str, &dyn Fn(&SharedExecutor) -> f64); 3] = [
            (
                "bugdoc_serve_executor_sessions",
                "Sessions currently bound to this executor",
                &|s| s.sessions.load(Ordering::SeqCst) as f64,
            ),
            (
                "bugdoc_serve_executor_runs",
                "Provenance runs resident in this executor (seeded + executed)",
                &|s| s.exec.with_provenance_ref(|prov| prov.len()) as f64,
            ),
            (
                "bugdoc_serve_executor_uptime_seconds",
                "Seconds since this executor was built",
                &|s| s.created_at.elapsed().as_secs_f64(),
            ),
        ];
        for (name, help, value_of) in families {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            for shared in &executors {
                let _ = writeln!(out, "{name}{{executor=\"{}\"}} {}", shared.index, value_of(shared));
            }
        }
        out
    }

    /// Closes every executor: durable ones snapshot their provenance and
    /// release their directory lock (`Executor::shutdown`). Returns how
    /// many durable stores were closed.
    ///
    /// Call only after every handler thread has quiesced — a diagnosis
    /// racing past the close would find its durable store gone.
    pub fn shutdown_all(&self) -> Result<usize, String> {
        self.sessions.lock().clear();
        let executors: Vec<Arc<SharedExecutor>> =
            self.executors.lock().drain().map(|(_, s)| s).collect();
        let mut closed = 0;
        let mut failures = Vec::new();
        for shared in executors {
            match shared.exec.shutdown() {
                Ok(true) => closed += 1,
                Ok(false) => {}
                Err(e) => failures.push(e.to_string()),
            }
        }
        if failures.is_empty() {
            Ok(closed)
        } else {
            Err(failures.join("; "))
        }
    }

    /// Number of live sessions (attached or detached).
    pub fn session_count(&self) -> usize {
        self.sessions.lock().len()
    }

    /// Number of distinct executors (distinct spec texts) resident.
    pub fn executor_count(&self) -> usize {
        self.executors.lock().len()
    }

    fn bound_executor(&self, id: u64) -> Result<Arc<SharedExecutor>, String> {
        let sessions = self.sessions.lock();
        Ok(Arc::clone(&bound_of(&sessions, id)?.shared))
    }
}

fn bound_of(sessions: &HashMap<u64, Session>, id: u64) -> Result<&Bound, String> {
    sessions
        .get(&id)
        .ok_or_else(|| format!("unknown session {id}"))?
        .bound
        .as_ref()
        .ok_or_else(|| format!("session {id} has no spec bound (send SPEC first)"))
}

fn release_bound(bound: &Bound) {
    if bound.reserved > 0 {
        bound.shared.exec.release_session(bound.reserved);
    }
    bound.shared.sessions.fetch_sub(1, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;
    use bugdoc_core::{EvalResult, Instance, Outcome, ParamSpace, Value};
    use bugdoc_engine::{ExecutorConfig, FnPipeline, Pipeline};

    /// A factory over a planted-cause pipeline (`a = 4` fails). The spec
    /// text is ignored except for a `budget <n>` line, so tests can bind
    /// distinct texts to get distinct executors.
    fn factory() -> Box<ExecutorFactory> {
        Box::new(|text: &str| {
            let space = ParamSpace::builder()
                .ordinal("a", [1, 2, 3, 4])
                .ordinal("b", [1, 2, 3, 4])
                .build();
            let a = space.by_name("a").unwrap();
            let pipe: Arc<dyn Pipeline> =
                Arc::new(FnPipeline::new(space, move |inst: &Instance| {
                    EvalResult::of(Outcome::from_check(inst.get(a) != &Value::from(4)))
                }));
            let budget = text
                .lines()
                .find_map(|l| l.strip_prefix("budget "))
                .map(|n| n.trim().parse().unwrap());
            Ok(Executor::new(
                pipe,
                ExecutorConfig {
                    budget,
                    ..ExecutorConfig::default()
                },
            ))
        })
    }

    #[test]
    fn same_spec_shares_one_executor() {
        let manager = SessionManager::new(factory());
        let first = manager.create();
        let second = manager.create();
        let ack = manager.set_spec(first, "pipeline one\n", 0).unwrap();
        assert_eq!(ack, SpecAck { shared: false, sessions: 1 });
        let ack = manager.set_spec(second, "pipeline one\n", 0).unwrap();
        assert_eq!(ack, SpecAck { shared: true, sessions: 2 });
        assert_eq!(manager.executor_count(), 1);

        let report_a = manager
            .diagnose(first, DiagnoseParams::default())
            .unwrap();
        let report_b = manager
            .diagnose(second, DiagnoseParams::default())
            .unwrap();
        assert_eq!(report_a, report_b, "shared history, shared verdict");
        assert!(report_a.contains("a = 4"), "{report_a}");

        // The second session's diagnosis was answered mostly from the
        // first's executions: its session-scoped delta is dominated by
        // cache hits, far below what the first session paid. (It need not
        // be exactly zero — the richer history can steer the algorithms to
        // probe a few instances the first run never needed.)
        let field = |id: u64, key: &str| -> usize {
            let stats = manager.stats(id).unwrap();
            stats
                .lines()
                .find(|l| l.starts_with(key))
                .and_then(|l| l.split_whitespace().nth(1))
                .unwrap()
                .parse()
                .unwrap()
        };
        let first_new = field(first, "session.new_executions");
        let second_new = field(second, "session.new_executions");
        let second_hits = field(second, "session.cache_hits");
        assert!(
            second_new * 4 < first_new,
            "second session paid {second_new} vs first's {first_new}"
        );
        assert!(second_hits > 0, "no cross-session sharing observed");
    }

    #[test]
    fn distinct_specs_get_distinct_executors() {
        let manager = SessionManager::new(factory());
        let first = manager.create();
        let second = manager.create();
        manager.set_spec(first, "pipeline one\n", 0).unwrap();
        let ack = manager.set_spec(second, "pipeline two\n", 0).unwrap();
        assert_eq!(ack, SpecAck { shared: false, sessions: 1 });
        assert_eq!(manager.executor_count(), 2);
    }

    #[test]
    fn reservations_gate_admission_and_close_releases() {
        let manager = SessionManager::new(factory());
        let first = manager.create();
        let second = manager.create();
        manager.set_spec(first, "budget 10\n", 8).unwrap();
        // 8 of 10 slots are spoken for: a 5-slot session must be refused...
        let refused = manager.set_spec(second, "budget 10\n", 5);
        assert!(refused.unwrap_err().contains("cannot admit"), "admitted over budget");
        // ...and a 2-slot one admitted.
        manager.set_spec(second, "budget 10\n", 2).unwrap();
        // Closing the big session returns its slots.
        manager.close(first).unwrap();
        let third = manager.create();
        manager.set_spec(third, "budget 10\n", 8).unwrap();
    }

    #[test]
    fn rebinding_releases_the_previous_reservation() {
        let manager = SessionManager::new(factory());
        let id = manager.create();
        manager.set_spec(id, "budget 10\n", 8).unwrap();
        // Same session re-binds with a smaller ask: must not double-count.
        manager.set_spec(id, "budget 10\n", 6).unwrap();
        let other = manager.create();
        manager.set_spec(other, "budget 10\n", 4).unwrap();
    }

    #[test]
    fn attach_detach_lifecycle() {
        let manager = SessionManager::new(factory());
        let id = manager.create();
        assert!(manager.attach(id).is_err(), "double attach");
        manager.detach(id).unwrap();
        manager.attach(id).unwrap();
        assert!(manager.attach(9999).is_err());
        assert!(manager.detach(9999).is_err());
        assert!(manager.close(9999).is_err());
        manager.close(id).unwrap();
        assert!(manager.attach(id).is_err(), "closed session is gone");
    }

    #[test]
    fn requests_without_a_spec_are_errors() {
        let manager = SessionManager::new(factory());
        let id = manager.create();
        assert!(manager
            .diagnose(id, DiagnoseParams::default())
            .unwrap_err()
            .contains("no spec bound"));
        assert!(manager.stats(id).unwrap_err().contains("no spec bound"));
    }

    #[test]
    fn factory_errors_surface_to_the_binder() {
        let manager = SessionManager::new(Box::new(|_| Err("bad spec".to_string())));
        let id = manager.create();
        assert_eq!(
            manager.set_spec(id, "whatever\n", 0).unwrap_err(),
            "bad spec"
        );
        assert_eq!(manager.executor_count(), 0);
    }
}
