//! CRC-32 (IEEE 802.3 polynomial, the `cksum`/zlib variant), implemented
//! in-crate: the build environment has no registry access, and a WAL must
//! not take integrity checking on faith from an optional dependency.
//!
//! Standard reflected table-driven implementation: polynomial `0xEDB88320`
//! (the bit-reversed `0x04C11DB7`), initial value `0xFFFF_FFFF`, final XOR
//! `0xFFFF_FFFF`. Matches zlib's `crc32()` — the test vectors below are the
//! published ones ("123456789" → `0xCBF43926`).

/// The 256-entry lookup table for the reflected IEEE polynomial, built at
/// compile time so the checksum path has no lazy-init branch.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// The CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"frame payload with some entropy 0123456789".to_vec();
        let good = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupt = data.clone();
                corrupt[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupt), good, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
