//! CRC-32 (IEEE 802.3 polynomial, the `cksum`/zlib variant), implemented
//! in-crate: the build environment has no registry access, and a WAL must
//! not take integrity checking on faith from an optional dependency.
//!
//! Slice-by-8 reflected table-driven implementation: polynomial
//! `0xEDB88320` (the bit-reversed `0x04C11DB7`), initial value
//! `0xFFFF_FFFF`, final XOR `0xFFFF_FFFF`. Matches zlib's `crc32()` — the
//! test vectors below are the published ones ("123456789" → `0xCBF43926`).
//!
//! Replay checksums every frame of the log, so the throughput of this loop
//! is on the recovery critical path. Slicing-by-8 folds eight input bytes
//! per iteration through eight 256-entry tables instead of one byte through
//! one table — same polynomial arithmetic, ~8× fewer loop-carried
//! dependencies. The tables are built at compile time so the checksum path
//! has no lazy-init branch.

/// Eight 256-entry lookup tables for the reflected IEEE polynomial.
/// `TABLES[0]` is the classic byte-at-a-time table; `TABLES[k][i]` advances
/// the CRC of byte `i` by `k` further zero bytes, which is what lets one
/// iteration retire eight input bytes.
const TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i: u32 = 0;
    while i < 256 {
        let mut crc = i;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i as usize] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

/// The CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        // The current CRC folds into the first four input bytes (reflected
        // CRC over little-endian words); the u64 load keeps the eight table
        // lookups independent of each other.
        let x = u64::from_le_bytes(chunk.try_into().unwrap()) ^ u64::from(crc);
        crc = TABLES[7][(x & 0xFF) as usize]
            ^ TABLES[6][((x >> 8) & 0xFF) as usize]
            ^ TABLES[5][((x >> 16) & 0xFF) as usize]
            ^ TABLES[4][((x >> 24) & 0xFF) as usize]
            ^ TABLES[3][((x >> 32) & 0xFF) as usize]
            ^ TABLES[2][((x >> 40) & 0xFF) as usize]
            ^ TABLES[1][((x >> 48) & 0xFF) as usize]
            ^ TABLES[0][(x >> 56) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    /// The sliced loop against the one-table byte-at-a-time definition, on
    /// lengths straddling the 8-byte chunk boundary and misaligned starts.
    #[test]
    fn sliced_matches_bytewise_reference() {
        fn reference(bytes: &[u8]) -> u32 {
            let mut crc = 0xFFFF_FFFFu32;
            for &b in bytes {
                crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
            }
            crc ^ 0xFFFF_FFFF
        }
        let data: Vec<u8> = (0..257u32).map(|i| (i.wrapping_mul(131) >> 3) as u8).collect();
        for start in 0..9 {
            for len in [0, 1, 7, 8, 9, 15, 16, 17, 63, 64, 65, 200] {
                let slice = &data[start..start + len];
                assert_eq!(crc32(slice), reference(slice), "start {start} len {len}");
            }
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"frame payload with some entropy 0123456789".to_vec();
        let good = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupt = data.clone();
                corrupt[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupt), good, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
