//! The run-record codec shared by the WAL and snapshot files.
//!
//! One *record* is one executed instance with its evaluation; one *frame* is
//! a record's payload wrapped in a `[len: u32 LE][crc32(payload): u32 LE]`
//! header. See the crate docs for the full byte layout.

use crate::crc32::crc32;
use crate::PersistError;
use bugdoc_core::{EvalResult, Instance, Outcome, ParamSpace, Run, Value};

/// Upper bound on a frame payload. Real records are tens of bytes; anything
/// larger than this is read as corruption (a torn length field must not make
/// recovery attempt a multi-gigabyte allocation).
pub const MAX_FRAME_BYTES: usize = 1 << 24;

/// Bytes of a frame header: payload length + payload CRC-32.
pub const FRAME_HEADER_BYTES: usize = 8;

/// The identity half of a record: the dense domain-index encoding when the
/// instance lies inside its space's declared domains, or the raw values when
/// it does not (the provenance store's overflow path).
#[derive(Debug, Clone, PartialEq)]
pub enum RecordKey {
    /// One domain index per parameter, in parameter order.
    Dense(Box<[u32]>),
    /// Raw values for an instance that cannot be densely encoded.
    Raw(Vec<Value>),
}

/// One run, in serializable form.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// The instance identity.
    pub key: RecordKey,
    /// The binary evaluation.
    pub outcome: Outcome,
    /// The raw score the evaluation thresholded, if any.
    pub score: Option<f64>,
}

/// Why a frame payload could not be decoded (all variants read as
/// corruption by recovery: the log is truncated at the offending frame).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The payload ended mid-field.
    Truncated,
    /// An unknown kind/outcome/value tag byte.
    BadTag(u8),
    /// A string value was not UTF-8.
    BadUtf8,
    /// A float value was NaN (rejected by [`Value::float`]'s domain).
    NanValue,
    /// A dense key's arity or a domain index does not fit the space.
    Domain,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "payload truncated mid-field"),
            DecodeError::BadTag(t) => write!(f, "unknown tag byte {t:#04x}"),
            DecodeError::BadUtf8 => write!(f, "string value is not UTF-8"),
            DecodeError::NanValue => write!(f, "float value is NaN"),
            DecodeError::Domain => write!(f, "dense key does not fit the parameter space"),
        }
    }
}

impl RunRecord {
    /// The serializable form of a recorded run. Prefers the instance's
    /// cached dense key; falls back to encoding against `space`; instances
    /// outside the declared domains serialize their raw values.
    pub fn from_run(run: &Run, space: &ParamSpace) -> Self {
        let key = run
            .instance
            .dense_key()
            .map(<Box<[u32]>>::from)
            .or_else(|| space.encode(&run.instance))
            .map(RecordKey::Dense)
            .unwrap_or_else(|| RecordKey::Raw(run.instance.values().to_vec()));
        RunRecord {
            key,
            outcome: run.outcome(),
            score: run.eval.score,
        }
    }

    /// Cheap validity check: would [`to_run`](Self::to_run) against `space`
    /// succeed? Dense keys are checked for arity and per-parameter index
    /// range; raw records always fit (they take the provenance store's
    /// overflow path). Recovery runs this in the replay sink — where a
    /// misfit must truncate the log like a torn frame — so the actual
    /// materialization can be deferred and batched across workers.
    pub fn fits(&self, space: &ParamSpace) -> bool {
        match &self.key {
            RecordKey::Dense(key) => {
                key.len() == space.len()
                    && space
                        .ids()
                        .zip(key.iter())
                        .all(|(p, &idx)| (idx as usize) < space.domain(p).len())
            }
            RecordKey::Raw(_) => true,
        }
    }

    /// Materializes the record against `space`. Dense keys are validated
    /// (arity and per-parameter index range) — a key that does not fit is
    /// [`DecodeError::Domain`], which recovery treats as corruption. Raw
    /// records become key-less instances and take the provenance store's
    /// existing overflow path when recorded.
    pub fn to_run(&self, space: &ParamSpace) -> Result<Run, DecodeError> {
        if !self.fits(space) {
            return Err(DecodeError::Domain);
        }
        let instance = match &self.key {
            RecordKey::Dense(key) => space.instance_from_indices(key),
            RecordKey::Raw(values) => Instance::new(values.clone()),
        };
        Ok(Run {
            instance,
            eval: EvalResult {
                outcome: self.outcome,
                score: self.score,
            },
        })
    }

    /// By-value [`to_run`](Self::to_run): moves the dense key (or raw
    /// values) into the instance instead of cloning them. The streaming
    /// recovery path runs this once per frame, so the saved allocation and
    /// copy are per-record hot-path work.
    pub fn into_run(self, space: &ParamSpace) -> Result<Run, DecodeError> {
        if !self.fits(space) {
            return Err(DecodeError::Domain);
        }
        let instance = match self.key {
            RecordKey::Dense(key) => space.instance_from_owned_indices(key.into_vec()),
            RecordKey::Raw(values) => Instance::new(values),
        };
        Ok(Run {
            instance,
            eval: EvalResult {
                outcome: self.outcome,
                score: self.score,
            },
        })
    }

    /// Appends the record's payload bytes (no frame header) to `out`.
    /// Fails with [`PersistError::FrameOverflow`] — leaving partial bytes in
    /// `out`, which the caller must discard — when a length field does not
    /// fit the format's `u32`: a truncated length would write a frame that
    /// decodes to a *different* record or that replay refuses.
    pub fn encode_payload(&self, out: &mut Vec<u8>) -> Result<(), PersistError> {
        let (kind, count) = match &self.key {
            RecordKey::Dense(k) => (0u8, k.len()),
            RecordKey::Raw(v) => (1u8, v.len()),
        };
        let count: u32 = count.try_into().map_err(|_| PersistError::FrameOverflow {
            field: "parameter count",
            len: count,
        })?;
        out.push(kind);
        out.push(match self.outcome {
            Outcome::Succeed => 0,
            Outcome::Fail => 1,
        });
        match self.score {
            None => out.push(0),
            Some(s) => {
                out.push(1);
                out.extend_from_slice(&s.to_bits().to_le_bytes());
            }
        }
        out.extend_from_slice(&count.to_le_bytes());
        match &self.key {
            RecordKey::Dense(key) => {
                for &idx in key.iter() {
                    out.extend_from_slice(&idx.to_le_bytes());
                }
            }
            RecordKey::Raw(values) => {
                for v in values {
                    encode_value(v, out)?;
                }
            }
        }
        Ok(())
    }

    /// Decodes a payload produced by [`RunRecord::encode_payload`]. The
    /// whole payload must be consumed — trailing bytes are corruption.
    pub fn decode_payload(payload: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader { buf: payload, pos: 0 };
        let kind = r.u8()?;
        let outcome = match r.u8()? {
            0 => Outcome::Succeed,
            1 => Outcome::Fail,
            t => return Err(DecodeError::BadTag(t)),
        };
        let score = match r.u8()? {
            0 => None,
            1 => Some(f64::from_bits(r.u64()?)),
            t => return Err(DecodeError::BadTag(t)),
        };
        let count = r.u32()? as usize;
        if count > MAX_FRAME_BYTES / 4 {
            return Err(DecodeError::Truncated);
        }
        let key = match kind {
            0 => {
                let mut key = Vec::with_capacity(count);
                for _ in 0..count {
                    key.push(r.u32()?);
                }
                RecordKey::Dense(key.into_boxed_slice())
            }
            1 => {
                let mut values = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    values.push(decode_value(&mut r)?);
                }
                RecordKey::Raw(values)
            }
            t => return Err(DecodeError::BadTag(t)),
        };
        if r.pos != payload.len() {
            return Err(DecodeError::Truncated);
        }
        Ok(RunRecord { key, outcome, score })
    }
}

fn encode_value(v: &Value, out: &mut Vec<u8>) -> Result<(), PersistError> {
    match v {
        Value::Bool(b) => {
            out.push(0);
            out.push(*b as u8);
        }
        Value::Int(i) => {
            out.push(1);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(x) => {
            out.push(2);
            out.extend_from_slice(&x.get().to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            let len: u32 = s.len().try_into().map_err(|_| PersistError::FrameOverflow {
                field: "string value length",
                len: s.len(),
            })?;
            out.push(3);
            out.extend_from_slice(&len.to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
    }
    Ok(())
}

/// Below this many records, batched recovery decodes on the calling thread:
/// spawn cost would exceed the decode work.
pub(crate) const PARALLEL_DECODE_MIN_RECORDS: usize = 2048;

/// Materializes a batch of already-[`fits`](RunRecord::fits)-validated
/// records, fanning contiguous chunks across `workers` threads when the
/// batch is large enough to pay for them. Order is preserved (recovery
/// replays runs in log order), and validation-before-decode makes the
/// per-record `to_run` infallible here.
pub(crate) fn materialize_validated(
    records: &[RunRecord],
    space: &ParamSpace,
    workers: usize,
) -> Vec<Run> {
    let decode = |r: &RunRecord| {
        r.to_run(space)
            // lint: allow(W003, reason = "caller contract: every record passed fits()-validation against this same space, so the Domain error is unreachable")
            .expect("record validated against this space before batch decode")
    };
    if workers <= 1 || records.len() < PARALLEL_DECODE_MIN_RECORDS {
        return records.iter().map(decode).collect();
    }
    let per_worker = records.len().div_ceil(workers);
    let mut runs = Vec::with_capacity(records.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = records
            .chunks(per_worker)
            .map(|chunk| scope.spawn(move || chunk.iter().map(decode).collect::<Vec<_>>()))
            .collect();
        for handle in handles {
            // lint: allow(W003, reason = "join() fails only if the worker panicked; re-raising that panic on the coordinating thread is the intended propagation")
            runs.extend(handle.join().expect("decode worker panicked"));
        }
    });
    runs
}

fn decode_value(r: &mut Reader<'_>) -> Result<Value, DecodeError> {
    match r.u8()? {
        0 => match r.u8()? {
            0 => Ok(Value::Bool(false)),
            1 => Ok(Value::Bool(true)),
            t => Err(DecodeError::BadTag(t)),
        },
        1 => Ok(Value::Int(r.u64()? as i64)),
        2 => {
            let bits = r.u64()?;
            let x = f64::from_bits(bits);
            if x.is_nan() {
                return Err(DecodeError::NanValue);
            }
            Ok(Value::float(x))
        }
        3 => {
            let len = r.u32()? as usize;
            let bytes = r.bytes(len)?;
            let s = std::str::from_utf8(bytes).map_err(|_| DecodeError::BadUtf8)?;
            Ok(Value::str(s))
        }
        t => Err(DecodeError::BadTag(t)),
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
        let out = self.buf.get(self.pos..end).ok_or(DecodeError::Truncated)?;
        self.pos = end;
        Ok(out)
    }

    /// `N` bytes as a fixed array; the narrowing `try_into` cannot fail
    /// (`bytes(N)` returned exactly `N` bytes) but is mapped rather than
    /// unwrapped — the decode path must be panic-free on arbitrary input.
    fn array<const N: usize>(&mut self) -> Result<[u8; N], DecodeError> {
        self.bytes(N)?.try_into().map_err(|_| DecodeError::Truncated)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.array::<1>()?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.array()?))
    }
}

/// Reads a little-endian `u32` at `at`, `None` when out of bounds.
#[inline]
pub(crate) fn read_u32_at(bytes: &[u8], at: usize) -> Option<u32> {
    let b = bytes.get(at..at.checked_add(4)?)?;
    Some(u32::from_le_bytes(b.try_into().ok()?))
}

/// Reads a little-endian `u64` at `at`, `None` when out of bounds.
#[inline]
pub(crate) fn read_u64_at(bytes: &[u8], at: usize) -> Option<u64> {
    let b = bytes.get(at..at.checked_add(8)?)?;
    Some(u64::from_le_bytes(b.try_into().ok()?))
}

/// Appends one full frame (header + payload) for `record` to `out`.
/// Fails — restoring `out` to its incoming length — when the record cannot
/// be framed within the codec's bounds: a length field past `u32`, or a
/// payload past [`MAX_FRAME_BYTES`] (which replay reads as corruption, so
/// writing it would persist a frame recovery refuses).
pub fn append_frame(record: &RunRecord, out: &mut Vec<u8>) -> Result<(), PersistError> {
    let start = out.len();
    out.extend_from_slice(&[0u8; FRAME_HEADER_BYTES]);
    if let Err(e) = record.encode_payload(out) {
        out.truncate(start);
        return Err(e);
    }
    let payload_len = out.len() - start - FRAME_HEADER_BYTES;
    let len: u32 = match payload_len.try_into() {
        Ok(n) if payload_len <= MAX_FRAME_BYTES => n,
        _ => {
            out.truncate(start);
            return Err(PersistError::FrameOverflow {
                field: "frame payload",
                len: payload_len,
            });
        }
    };
    // Backpatch the header reserved above, now that the payload bytes (and
    // their CRC) exist. The spans are in bounds by construction: `start + 8
    // <= out.len()` since the reservation, and nothing shrank `out`.
    // lint: allow(W003, reason = "header backpatch into the 8 bytes reserved at the top of this function; spans are in bounds by construction", scope = "block")
    {
        let crc = crc32(&out[start + FRAME_HEADER_BYTES..]);
        out[start..start + 4].copy_from_slice(&len.to_le_bytes());
        out[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
    }
    Ok(())
}

/// The result of pulling one frame off a byte stream.
pub enum NextFrame {
    /// A whole, checksum-valid frame: the decoded record and the offset just
    /// past it.
    Frame(RunRecord, usize),
    /// Clean end of input (offset exactly at the end).
    End,
    /// The bytes at the offset are not a valid frame: short header, short
    /// payload, oversized length, CRC mismatch, or an undecodable payload.
    /// Recovery truncates here.
    Torn,
}

/// Reads the frame starting at `offset` in `bytes`.
pub fn next_frame(bytes: &[u8], offset: usize) -> NextFrame {
    if offset == bytes.len() {
        return NextFrame::End;
    }
    let (Some(len), Some(crc)) = (
        read_u32_at(bytes, offset),
        read_u32_at(bytes, offset + 4),
    ) else {
        return NextFrame::Torn;
    };
    let len = len as usize;
    if len > MAX_FRAME_BYTES {
        return NextFrame::Torn;
    }
    let start = offset + FRAME_HEADER_BYTES;
    let Some(payload) = start.checked_add(len).and_then(|end| bytes.get(start..end)) else {
        return NextFrame::Torn;
    };
    if crc32(payload) != crc {
        return NextFrame::Torn;
    }
    match RunRecord::decode_payload(payload) {
        Ok(record) => NextFrame::Frame(record, start + len),
        Err(_) => NextFrame::Torn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bugdoc_core::ParamSpace;

    fn space() -> std::sync::Arc<ParamSpace> {
        ParamSpace::builder()
            .categorical("Dataset", ["Iris", "Digits"])
            .ordinal("Version", [1, 2, 3])
            .build()
    }

    fn roundtrip(record: &RunRecord) -> RunRecord {
        let mut bytes = Vec::new();
        append_frame(record, &mut bytes).unwrap();
        match next_frame(&bytes, 0) {
            NextFrame::Frame(got, end) => {
                assert_eq!(end, bytes.len());
                got
            }
            _ => panic!("frame did not read back"),
        }
    }

    #[test]
    fn dense_record_roundtrips() {
        let r = RunRecord {
            key: RecordKey::Dense(vec![1, 2].into_boxed_slice()),
            outcome: Outcome::Fail,
            score: Some(0.25),
        };
        assert_eq!(roundtrip(&r), r);
        let run = r.to_run(&space()).unwrap();
        assert_eq!(run.instance.values(), &["Digits".into(), Value::from(3)]);
        assert_eq!(run.eval.score, Some(0.25));
    }

    #[test]
    fn raw_record_roundtrips_and_overflows() {
        let r = RunRecord {
            key: RecordKey::Raw(vec![
                Value::from("Wine"),
                Value::from(99),
                Value::from(true),
                Value::float(2.5),
            ]),
            outcome: Outcome::Succeed,
            score: None,
        };
        assert_eq!(roundtrip(&r), r);
        let run = r.to_run(&space()).unwrap();
        assert!(run.instance.dense_key().is_none(), "raw stays key-less");
    }

    #[test]
    fn run_record_conversion_roundtrips() {
        let s = space();
        let run = Run {
            instance: s.instance_from_indices(&[0, 1]),
            eval: EvalResult::from_score_at_least(0.9, 0.6),
        };
        let rec = RunRecord::from_run(&run, &s);
        assert!(matches!(rec.key, RecordKey::Dense(_)));
        let back = rec.to_run(&s).unwrap();
        assert_eq!(back.instance, run.instance);
        assert_eq!(back.eval, run.eval);

        let overflow = Run {
            instance: Instance::new(vec![Value::from("Wine"), Value::from(7)]),
            eval: EvalResult::of(Outcome::Fail),
        };
        let rec = RunRecord::from_run(&overflow, &s);
        assert!(matches!(rec.key, RecordKey::Raw(_)));
        assert_eq!(rec.to_run(&s).unwrap().instance, overflow.instance);
    }

    #[test]
    fn out_of_range_dense_key_is_domain_error() {
        let r = RunRecord {
            key: RecordKey::Dense(vec![0, 9].into_boxed_slice()),
            outcome: Outcome::Fail,
            score: None,
        };
        assert_eq!(r.to_run(&space()).unwrap_err(), DecodeError::Domain);
        let wrong_arity = RunRecord {
            key: RecordKey::Dense(vec![0].into_boxed_slice()),
            outcome: Outcome::Fail,
            score: None,
        };
        assert_eq!(wrong_arity.to_run(&space()).unwrap_err(), DecodeError::Domain);
    }

    #[test]
    fn corruption_is_detected() {
        let r = RunRecord {
            key: RecordKey::Dense(vec![1, 2].into_boxed_slice()),
            outcome: Outcome::Fail,
            score: Some(0.5),
        };
        let mut bytes = Vec::new();
        append_frame(&r, &mut bytes).unwrap();
        // Flip every byte in turn: the frame must never decode to a
        // *different* record without tripping the CRC.
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            match next_frame(&corrupt, 0) {
                NextFrame::Torn => {}
                NextFrame::Frame(got, _) => {
                    panic!("byte {i} flipped yet frame decoded as {got:?}")
                }
                NextFrame::End => panic!("byte {i}: impossible End"),
            }
        }
        // Truncation at every prefix length is torn, except the empty tail.
        for cut in 1..bytes.len() {
            assert!(matches!(next_frame(&bytes[..cut], 0), NextFrame::Torn));
        }
        assert!(matches!(next_frame(&bytes, bytes.len()), NextFrame::End));
    }

    #[test]
    fn oversized_record_is_an_error_not_a_torn_frame() {
        // A payload past MAX_FRAME_BYTES must fail the append (replay would
        // read it as corruption), and the output buffer must be restored.
        let r = RunRecord {
            key: RecordKey::Raw(vec![Value::str(&"x".repeat(MAX_FRAME_BYTES + 1))]),
            outcome: Outcome::Fail,
            score: None,
        };
        let mut bytes = vec![0xAA; 3];
        let err = append_frame(&r, &mut bytes).unwrap_err();
        assert!(matches!(
            err,
            PersistError::FrameOverflow { field: "frame payload", .. }
        ));
        assert!(err.to_string().contains("cannot be framed"));
        assert_eq!(bytes, vec![0xAA; 3], "failed append left partial bytes");
    }

    #[test]
    fn trailing_payload_bytes_rejected() {
        let r = RunRecord {
            key: RecordKey::Raw(vec![Value::from(1)]),
            outcome: Outcome::Succeed,
            score: None,
        };
        let mut payload = Vec::new();
        r.encode_payload(&mut payload).unwrap();
        payload.push(0);
        assert_eq!(
            RunRecord::decode_payload(&payload).unwrap_err(),
            DecodeError::Truncated
        );
    }
}
