//! # bugdoc-store — durable provenance
//!
//! BugDoc's central economy is reusing provenance from earlier runs so the
//! debugger never re-executes a configuration it has already seen (paper
//! §3's cost measure counts only *new* executions). This crate makes that
//! history survive the process: a segmented, checksummed **write-ahead log**
//! of run records, periodic **snapshots** of the whole
//! [`ProvenanceStore`], and **crash recovery** that truncates torn tails
//! and rebuilds an exact prefix of what was recorded. `std`-only — no
//! registry dependencies.
//!
//! ## On-disk format (version 1)
//!
//! A persist directory holds WAL segments and snapshots side by side:
//!
//! ```text
//! <dir>/wal-00000001.seg      segments, ascending; the log is their
//! <dir>/wal-00000002.seg      concatenation in name order
//! <dir>/snap-000000000150.bds snapshots, named by covered run count
//! ```
//!
//! **WAL segment** — 16-byte header (`"BDWALv1\n"` magic, then the space
//! digest as `u64` LE), then frames. A segment rolls when the next frame
//! would exceed the configured byte size, so a frame never spans files.
//!
//! **Frame** — `[payload_len: u32 LE][crc32(payload): u32 LE][payload]`.
//! CRC-32 is the IEEE/zlib polynomial, implemented in
//! [`crc32`](crc32::crc32). The payload is one run record:
//!
//! ```text
//! kind: u8      0 = dense key, 1 = raw values (overflow instance)
//! outcome: u8   0 = succeed, 1 = fail
//! score: u8     0 = none; 1 = present, followed by f64 bits (u64 LE)
//! count: u32 LE parameters
//! key           dense: count × u32 LE domain indices
//!               raw:   count × value (tag u8: 0 bool+1B, 1 int+8B LE,
//!                      2 float+8B LE bits, 3 str+u32 LE len+UTF-8)
//! ```
//!
//! **Snapshot** — 64-byte header (`"BDSNAPv1"` magic, space digest, epoch
//! size, run count, WAL segment, WAL offset, retired-epoch watermark — all
//! `u64` LE — then the CRC-32 of those 56 bytes and 4 zero bytes) followed
//! by one frame per run in recording order. The header is checksummed
//! because its WAL position licenses truncation and pruning. Written to a
//! `.tmp` name, fsynced, and renamed into place (directory fsynced before
//! any pruning trusts the rename); the newest two are retained so a
//! damaged snapshot falls back to its predecessor, then to full WAL
//! replay.
//!
//! A `lock` file (holding the owner's pid) guards the directory against
//! concurrent writers; locks left by dead processes are broken
//! automatically, live holders are [`PersistError::Locked`]. Recovery also
//! refuses a log with a missing *middle* segment
//! ([`PersistError::MissingSegment`]) — concatenating across a hole would
//! fabricate a history that never existed.
//!
//! **Recovery** ([`DurableStore::open`]) loads the newest intact snapshot,
//! replays the WAL tail from the position it covers (or the whole log when
//! no snapshot is usable), verifies every frame's CRC and that every dense
//! key fits the spec's [`ParamSpace`] (raw frames route through the
//! provenance store's existing overflow path), truncates the log at the
//! first torn or undecodable frame, and deletes any segments past it —
//! reopened history is always an exact prefix of what was appended. A
//! segment or snapshot whose space digest differs from the spec's is a hard
//! [`PersistError::SpaceMismatch`]: dense keys are meaningless across spec
//! changes, and silently reinterpreting them would corrupt every downstream
//! guarantee.

#![warn(missing_docs)]

pub mod crc32;
pub mod frame;
pub mod snapshot;
pub mod wal;

pub use frame::{DecodeError, RecordKey, RunRecord};
pub use wal::{Wal, WalPosition};

use bugdoc_core::{ParamSpace, ProvenanceStore, Run};
use std::hash::{Hash, Hasher};
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Telemetry handles for the durable-store timings, registered once and
/// cached so record paths never touch the registry lock. Append/fsync are
/// the per-run costs a serving deployment watches; snapshot and replay are
/// the rare heavyweight phases the flight recorder also captures.
struct StoreProbes {
    wal_append_ns: &'static bugdoc_telemetry::Histogram,
    wal_fsync_ns: &'static bugdoc_telemetry::Histogram,
    snapshot_write_ns: &'static bugdoc_telemetry::Histogram,
    replay_ns: &'static bugdoc_telemetry::Histogram,
}

/// Whole microseconds since `started`, saturating (flight-event payloads
/// are u64 microseconds).
fn elapsed_us(started: Instant) -> u64 {
    let us = started.elapsed().as_micros();
    if us > u64::MAX as u128 { u64::MAX } else { us as u64 }
}

fn probes() -> &'static StoreProbes {
    static P: OnceLock<StoreProbes> = OnceLock::new();
    P.get_or_init(|| StoreProbes {
        wal_append_ns: bugdoc_telemetry::histogram(
            "bugdoc_store_wal_append_ns",
            "Latency of one WAL frame append, encode included (ns)",
        ),
        wal_fsync_ns: bugdoc_telemetry::histogram(
            "bugdoc_store_wal_fsync_ns",
            "Latency of syncing the WAL tail to disk (ns)",
        ),
        snapshot_write_ns: bugdoc_telemetry::histogram(
            "bugdoc_store_snapshot_write_ns",
            "Latency of writing one full provenance snapshot (ns)",
        ),
        replay_ns: bugdoc_telemetry::histogram(
            "bugdoc_store_replay_ns",
            "Latency of WAL-tail replay during recovery (ns)",
        ),
    })
}

/// WAL segment magic bytes.
pub(crate) const WAL_MAGIC: &[u8; 8] = b"BDWALv1\n";
/// Snapshot magic bytes.
pub(crate) const SNAP_MAGIC: &[u8; 8] = b"BDSNAPv1";
/// WAL segment header length: magic + space digest.
pub(crate) const WAL_HEADER_BYTES: usize = 16;

/// Default segment roll size.
pub const DEFAULT_SEGMENT_BYTES: u64 = 4 << 20;

/// Where and how to persist provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistConfig {
    /// Directory holding the WAL segments and snapshots (created if absent).
    pub dir: PathBuf,
    /// Segment roll size in bytes (default [`DEFAULT_SEGMENT_BYTES`]).
    pub segment_bytes: u64,
    /// Write a snapshot every this many appended runs (`None`: only when
    /// [`DurableStore::snapshot`] is called explicitly).
    pub snapshot_every: Option<u64>,
    /// Worker threads for recovery's record decode (snapshot rows and WAL
    /// frames are validated sequentially, then materialized in parallel
    /// batches). `0` (the default) sizes from the machine's available
    /// parallelism; `1` forces fully sequential recovery. Small logs decode
    /// sequentially regardless.
    pub replay_workers: usize,
}

impl PersistConfig {
    /// A config with default segment size, no automatic snapshots, and
    /// auto-sized replay decode.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        PersistConfig {
            dir: dir.into(),
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            snapshot_every: None,
            replay_workers: 0,
        }
    }

    /// Resolves [`replay_workers`](Self::replay_workers): `0` becomes the
    /// machine's available parallelism (capped — recovery decode saturates
    /// memory bandwidth well before it runs out of cores).
    pub(crate) fn resolved_replay_workers(&self) -> usize {
        if self.replay_workers != 0 {
            return self.replay_workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(1)
    }
}

/// Why a persistence operation failed.
#[derive(Debug)]
pub enum PersistError {
    /// An OS-level I/O failure, with the path involved.
    Io {
        /// The file or directory the operation touched.
        path: PathBuf,
        /// The underlying error.
        error: std::io::Error,
    },
    /// A segment or snapshot was written against a different parameter
    /// space: dense keys cannot be reinterpreted across spec changes.
    SpaceMismatch {
        /// Digest of the spec's space.
        expected: u64,
        /// Digest found on disk.
        found: u64,
        /// The offending file.
        path: PathBuf,
    },
    /// A snapshot file failed validation (recovery falls back automatically;
    /// this surfaces only from explicit snapshot APIs).
    CorruptSnapshot,
    /// A WAL segment is missing from the middle of the log (or the log's
    /// anchor segment is gone). Replaying across the hole would fabricate a
    /// history that never existed, so recovery refuses.
    MissingSegment {
        /// The segment index recovery expected next.
        expected: u64,
        /// The index actually found.
        found: u64,
        /// The persist directory.
        dir: PathBuf,
    },
    /// A record field exceeds the frame format's `u32` bounds or the frame
    /// exceeds [`frame::MAX_FRAME_BYTES`] (a pathological instance: billions
    /// of parameters or a multi-gigabyte string value). Writing it anyway
    /// would emit a frame replay refuses — silently truncated lengths
    /// corrupt the log — so the append fails instead.
    FrameOverflow {
        /// Which length overflowed.
        field: &'static str,
        /// The oversized length.
        len: usize,
    },
    /// Another live process (or another executor in this process) holds the
    /// persist directory. Concurrent appenders would interleave frames and
    /// corrupt the run-order invariant, so opening refuses.
    Locked {
        /// The pid recorded in the lock file.
        pid: u32,
        /// The lock file.
        path: PathBuf,
    },
}

/// Widens a `usize` to `u64`. Lossless on every supported target; named so
/// the WAL codec needs no raw `as` casts (the checked-cast lint W005 bans
/// them there — a truncating cast and a widening one look identical at the
/// cast site).
pub(crate) fn u64_of(n: usize) -> u64 {
    n as u64
}

impl PersistError {
    pub(crate) fn io(path: &Path, error: std::io::Error) -> Self {
        PersistError::Io {
            path: path.to_path_buf(),
            error,
        }
    }
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io { path, error } => {
                write!(f, "{}: {error}", path.display())
            }
            PersistError::SpaceMismatch {
                expected,
                found,
                path,
            } => write!(
                f,
                "{}: persisted provenance belongs to a different parameter space \
                 (digest {found:#018x}, spec has {expected:#018x}); point persist_dir at a \
                 fresh directory or restore the original spec",
                path.display()
            ),
            PersistError::CorruptSnapshot => write!(f, "snapshot failed validation"),
            PersistError::MissingSegment {
                expected,
                found,
                dir,
            } => write!(
                f,
                "{}: WAL segment {expected} is missing (found segment {found} instead); \
                 the directory lost mid-log history and cannot be recovered as an exact \
                 prefix — restore the missing segment or start a fresh directory",
                dir.display()
            ),
            PersistError::FrameOverflow { field, len } => write!(
                f,
                "record cannot be framed: {field} is {len} bytes, past the codec's u32/frame \
                 bounds — persisting it would write a frame recovery refuses to read"
            ),
            PersistError::Locked { pid, path } => write!(
                f,
                "{}: persist directory is locked by live process {pid}; two concurrent \
                 writers would corrupt the log (delete the lock file only if that \
                 process is truly gone)",
                path.display()
            ),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// A stable fingerprint of a [`ParamSpace`]: parameter names, kinds, and
/// every domain value, in order. Stamped into every segment and snapshot
/// header so recovery refuses to decode dense keys against the wrong space.
pub fn space_digest(space: &ParamSpace) -> u64 {
    let mut h = bugdoc_core::FxHasher::default();
    space.len().hash(&mut h);
    for (_, def) in space.iter() {
        def.name().hash(&mut h);
        def.domain().is_ordinal().hash(&mut h);
        def.domain().len().hash(&mut h);
        for v in def.domain().values() {
            v.hash(&mut h);
        }
    }
    h.finish()
}

/// What recovery found when a durable store was opened.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Recovery {
    /// Total runs recovered (snapshot + replayed WAL tail).
    pub runs: usize,
    /// Runs loaded from the snapshot (0 when recovery replayed the full log).
    pub snapshot_runs: usize,
    /// WAL frames replayed on top of the snapshot.
    pub replayed_frames: usize,
    /// Bytes discarded as a torn tail.
    pub truncated_bytes: u64,
}

/// The open, appendable durable store: a [`Wal`] tail plus snapshot
/// bookkeeping. Obtained from [`DurableStore::open`], which performs
/// recovery first; thereafter every newly recorded run is teed in via
/// [`DurableStore::append`].
#[derive(Debug)]
pub struct DurableStore {
    dir: PathBuf,
    digest: u64,
    wal: Wal,
    snapshot_every: Option<u64>,
    appended_since_snapshot: u64,
    /// Advisory lock file, removed on drop.
    lock_path: PathBuf,
}

impl Drop for DurableStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.lock_path);
    }
}

/// Takes the directory's advisory lock: a `lock` file created exclusively,
/// holding this process's pid. A lock left by a *dead* process (checked via
/// `/proc/<pid>`) is broken and re-taken; a live holder — including another
/// executor in this very process — is [`PersistError::Locked`].
///
/// Publication is `hard_link` from a pre-written temp file rather than
/// `create_new` + `write`, so the lock file carries its holder's pid from
/// the instant it exists: contenders can never observe a freshly created
/// but not-yet-written (empty) lock and mistake a live holder for a
/// corrupt stale one.
///
/// Stale locks are never deleted in place. Between reading a dead
/// holder's pid and a `remove_file(&path)`, a racing contender could break
/// the same stale lock *and* a fresh live lock could be installed — the
/// in-place delete would then destroy the live lock and admit two
/// writers. Instead the breaker renames the lock aside to a sidecar name
/// unique to this (process, attempt): rename is atomic, so exactly one
/// contender captures any given lock file, and only the captured sidecar
/// — which nobody else will touch — is inspected and deleted. If the
/// capture turns out to hold a *live* pid (the stale lock was broken and
/// re-taken between our read and our rename), the sidecar is linked back
/// into place and the acquire fails with [`PersistError::Locked`].
fn acquire_lock(dir: &Path) -> Result<PathBuf, PersistError> {
    use std::io::Write as _;
    use std::sync::atomic::{AtomicU64, Ordering};
    // SeqCst: this is a cold path and the counter only has to be unique.
    static LOCK_SEQ: AtomicU64 = AtomicU64::new(0);
    let path = dir.join("lock");
    let seq = LOCK_SEQ.fetch_add(1, Ordering::SeqCst);
    let tmp = dir.join(format!("lock.tmp.{}.{seq}", std::process::id()));
    let mut tmp_file = std::fs::OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(&tmp)
        .map_err(|e| PersistError::io(&tmp, e))?;
    if let Err(e) = write!(tmp_file, "{}", std::process::id()) {
        drop(tmp_file);
        let _ = std::fs::remove_file(&tmp);
        return Err(PersistError::io(&tmp, e));
    }
    drop(tmp_file);
    let result = acquire_lock_from(dir, &path, &tmp, seq);
    let _ = std::fs::remove_file(&tmp);
    if result.is_ok() {
        sweep_dead_lock_litter(dir);
    }
    result
}

/// The contention loop of [`acquire_lock`]: publish `tmp` (which already
/// holds our pid) at `path` via no-clobber `hard_link`, breaking locks
/// whose holders are dead by the capture-then-verify rename protocol.
fn acquire_lock_from(
    dir: &Path,
    path: &Path,
    tmp: &Path,
    seq: u64,
) -> Result<PathBuf, PersistError> {
    let read_pid = |p: &Path| -> Option<u32> {
        std::fs::read_to_string(p).ok().and_then(|s| s.trim().parse().ok())
    };
    let alive = |pid: u32| Path::new(&format!("/proc/{pid}")).exists();
    for round in 0..8 {
        match std::fs::hard_link(tmp, path) {
            Ok(()) => return Ok(path.to_path_buf()),
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                if let Some(pid) = read_pid(path) {
                    if alive(pid) {
                        return Err(PersistError::Locked { pid, path: path.to_path_buf() });
                    }
                }
                // Presumed stale: capture it under a name unique to this
                // (process, acquire, round) so no other contender can race
                // us on the captured file. A rename that finds the path
                // already gone lost the capture to another breaker — just
                // retry the link.
                let sidecar =
                    dir.join(format!("lock.stale.{}.{seq}.{round}", std::process::id()));
                match std::fs::rename(path, &sidecar) {
                    Ok(()) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                    Err(e) => return Err(PersistError::io(path, e)),
                }
                // Verify the capture before destroying it: between our
                // read and our rename the stale lock may have been broken
                // by someone else and re-taken by a live process — in that
                // case we just captured a live holder's lock and must put
                // it back, not delete it.
                match read_pid(&sidecar) {
                    Some(pid) if alive(pid) => {
                        // Link (no-clobber) restores the live lock unless a
                        // third contender already installed a fresh one; in
                        // either case the directory is held by a live
                        // process, so this acquire fails.
                        let _ = std::fs::hard_link(&sidecar, path);
                        let _ = std::fs::remove_file(&sidecar);
                        return Err(PersistError::Locked { pid, path: path.to_path_buf() });
                    }
                    // Confirmed dead (or unreadable, which the atomic
                    // pid-before-publish protocol makes genuinely corrupt):
                    // the capture is ours to discard.
                    _ => {
                        let _ = std::fs::remove_file(&sidecar);
                    }
                }
            }
            Err(e) => return Err(PersistError::io(path, e)),
        }
    }
    Err(PersistError::io(
        path,
        std::io::Error::new(
            std::io::ErrorKind::WouldBlock,
            "could not acquire persist-directory lock after repeated stale-lock breaks",
        ),
    ))
}

/// Best-effort removal of `lock.tmp.*` / `lock.stale.*` files left behind
/// by contenders that crashed mid-acquire. Only files whose embedded pid
/// (second dot-separated field after the prefix) belongs to a dead process
/// are touched, so live racers' scratch files are safe.
fn sweep_dead_lock_litter(dir: &Path) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let rest = if let Some(r) = name.strip_prefix("lock.tmp.") {
            r
        } else if let Some(r) = name.strip_prefix("lock.stale.") {
            r
        } else {
            continue;
        };
        let owner: Option<u32> = rest.split('.').next().and_then(|p| p.parse().ok());
        match owner {
            Some(pid) if pid != std::process::id()
                && !Path::new(&format!("/proc/{pid}")).exists() =>
            {
                let _ = std::fs::remove_file(entry.path());
            }
            _ => {}
        }
    }
}

impl DurableStore {
    /// Opens (or initializes) the durable store at `config.dir` for
    /// `space`, running crash recovery: newest intact snapshot, WAL-tail
    /// replay with torn-tail truncation, and domain verification of every
    /// frame. Returns the recovered [`ProvenanceStore`], the append handle,
    /// and a [`Recovery`] report.
    pub fn open(
        space: &Arc<ParamSpace>,
        config: &PersistConfig,
    ) -> Result<(ProvenanceStore, DurableStore, Recovery), PersistError> {
        std::fs::create_dir_all(&config.dir).map_err(|e| PersistError::io(&config.dir, e))?;
        let lock_path = acquire_lock(&config.dir)?;
        match Self::open_locked(space, config) {
            Ok((store, wal, recovery)) => Ok((
                store,
                DurableStore {
                    dir: config.dir.clone(),
                    digest: space_digest(space),
                    wal,
                    snapshot_every: config.snapshot_every,
                    appended_since_snapshot: 0,
                    lock_path,
                },
                recovery,
            )),
            Err(e) => {
                // A failed open must not leave the directory locked against
                // a retry from this same (live) process.
                let _ = std::fs::remove_file(&lock_path);
                Err(e)
            }
        }
    }

    /// The recovery body of [`DurableStore::open`]; the caller holds the
    /// directory lock.
    fn open_locked(
        space: &Arc<ParamSpace>,
        config: &PersistConfig,
    ) -> Result<(ProvenanceStore, Wal, Recovery), PersistError> {
        let digest = space_digest(space);

        let replay_workers = config.resolved_replay_workers();
        let (mut store, from, snapshot_runs) =
            match snapshot::load_latest(&config.dir, digest, space, replay_workers)? {
                Some(loaded) => (loaded.store, Some(loaded.wal_position), loaded.runs),
                None => (ProvenanceStore::new(space.clone()), None, 0),
            };

        // A dense key that no longer fits the (digest-matched) space is
        // corruption, truncated like a torn frame (`into_run`'s domain check
        // rejects it in the sink). With one worker the whole pipeline
        // streams — decode, materialize, and record fused per frame with no
        // staging; with more, records are staged so materialization can be
        // batched across the replay workers.
        let replay_started = Instant::now();
        let mut replayed = 0usize;
        let summary = if replay_workers <= 1 {
            let sink_store = &mut store;
            wal::replay(&config.dir, digest, from, |record| match record.into_run(space) {
                Ok(run) => {
                    sink_store.record(run.instance, run.eval);
                    replayed += 1;
                    true
                }
                Err(_) => false,
            })?
        } else {
            let space_for_sink = space.clone();
            let mut pending: Vec<frame::RunRecord> = Vec::new();
            let summary =
                wal::replay_with_workers(&config.dir, digest, from, replay_workers, |record| {
                    let fits = record.fits(&space_for_sink);
                    if fits {
                        pending.push(record);
                    }
                    fits
                })?;
            replayed = pending.len();
            store.reserve(pending.len());
            for run in frame::materialize_validated(&pending, space, replay_workers) {
                store.record(run.instance, run.eval);
            }
            summary
        };

        probes().replay_ns.record_elapsed(replay_started);
        bugdoc_telemetry::event(
            bugdoc_telemetry::EventKind::WalReplay,
            replayed as u64,
            elapsed_us(replay_started),
            summary.truncated_bytes,
        );

        let wal = Wal::open(&config.dir, digest, config.segment_bytes)?;
        let recovery = Recovery {
            runs: store.len(),
            snapshot_runs,
            replayed_frames: replayed,
            truncated_bytes: summary.truncated_bytes,
        };
        Ok((store, wal, recovery))
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The log-tail position the next appended frame will start at (equally:
    /// the exclusive end position of everything appended so far).
    pub fn position(&self) -> WalPosition {
        self.wal.position()
    }

    /// Appends one newly recorded run to the WAL. Call in recording order —
    /// the WAL's frame order is the recovered store's run order.
    pub fn append(&mut self, run: &Run, space: &ParamSpace) -> Result<(), PersistError> {
        let started = Instant::now();
        let record = RunRecord::from_run(run, space);
        self.wal.append(&record)?;
        self.appended_since_snapshot += 1;
        probes().wal_append_ns.record_elapsed(started);
        Ok(())
    }

    /// True when `snapshot_every` appends have accumulated since the last
    /// snapshot — callers that separate appending (under their write lock)
    /// from snapshotting (off it) poll this.
    pub fn snapshot_due(&self) -> bool {
        matches!(self.snapshot_every, Some(every) if self.appended_since_snapshot >= every)
    }

    /// Appends a run and, when `snapshot_every` many runs have accumulated
    /// since the last snapshot, writes one from `store` (which must already
    /// contain the run). Returns `true` if a snapshot was written.
    pub fn append_with_snapshot(
        &mut self,
        run: &Run,
        store: &ProvenanceStore,
    ) -> Result<bool, PersistError> {
        self.append(run, store.space())?;
        if self.snapshot_due() {
            self.snapshot(store)?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Gracefully closes the store: fsyncs the WAL tail, writes a final
    /// snapshot of `store` (so a reopen warm-starts from the snapshot
    /// without replaying the tail), and releases the directory lock. The
    /// lock is released even when the snapshot fails — the process is
    /// exiting either way, and the WAL alone is a complete record.
    pub fn close(mut self, store: &ProvenanceStore) -> Result<(), PersistError> {
        self.snapshot(store)
        // Drop removes the lock file.
    }

    /// Writes a snapshot of `store` (covering the WAL up to its current
    /// tail), fsyncs the WAL first so the covered prefix is durable, and
    /// prunes WAL segments wholly covered by the *older* retained snapshot.
    pub fn snapshot(&mut self, store: &ProvenanceStore) -> Result<(), PersistError> {
        let started = Instant::now();
        self.wal.sync()?;
        probes().wal_fsync_ns.record_elapsed(started);
        let pos = self.wal.position();
        let write_started = Instant::now();
        snapshot::write_snapshot(&self.dir, self.digest, store, pos)?;
        probes().snapshot_write_ns.record_elapsed(write_started);
        bugdoc_telemetry::event(
            bugdoc_telemetry::EventKind::WalSnapshot,
            store.len() as u64,
            elapsed_us(started),
            0,
        );
        self.appended_since_snapshot = 0;
        // Both retained snapshots cover at least the segments before the
        // older one's position; those are now dead weight.
        let snapshots = snapshot::list_snapshots(&self.dir)?;
        if snapshots.len() >= 2 {
            if let Some(older) = snapshot::load_oldest_position(&self.dir)? {
                self.wal.prune_below(older.segment)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bugdoc_core::{EvalResult, Outcome, Value};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bugdoc-store-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn space() -> Arc<ParamSpace> {
        ParamSpace::builder()
            .ordinal("x", (0..10).collect::<Vec<_>>())
            .categorical("m", ["a", "b", "c"])
            .build()
    }

    fn run_for(s: &Arc<ParamSpace>, xi: u32, mi: u32) -> Run {
        let instance = s.instance_from_indices(&[xi, mi]);
        let x = s.by_name("x").unwrap();
        let outcome = Outcome::from_check(instance.get(x) != &Value::from(7));
        Run {
            instance,
            eval: EvalResult::of(outcome),
        }
    }

    #[test]
    fn open_append_reopen_recovers_everything() {
        let dir = tmp("reopen");
        let s = space();
        let config = PersistConfig::new(&dir);
        let (store, mut durable, recovery) = DurableStore::open(&s, &config).unwrap();
        assert_eq!(recovery, Recovery::default());
        assert!(store.is_empty());
        let mut live = store;
        for xi in 0..10 {
            for mi in 0..3 {
                let run = run_for(&s, xi, mi);
                assert!(live.record(run.instance.clone(), run.eval));
                durable.append(&run, &s).unwrap();
            }
        }
        drop(durable);

        let (recovered, _, recovery) = DurableStore::open(&s, &config).unwrap();
        assert_eq!(recovery.runs, 30);
        assert_eq!(recovery.replayed_frames, 30);
        assert_eq!(recovery.snapshot_runs, 0);
        assert_eq!(recovered.len(), live.len());
        assert_eq!(recovered.num_failing(), live.num_failing());
        for (a, b) in recovered.runs().iter().zip(live.runs()) {
            assert_eq!(a.instance, b.instance);
            assert_eq!(a.eval, b.eval);
        }
    }

    #[test]
    fn snapshot_plus_tail_replay() {
        let dir = tmp("snaptail");
        let s = space();
        let config = PersistConfig {
            snapshot_every: Some(10),
            ..PersistConfig::new(&dir)
        };
        let (mut live, mut durable, _) = DurableStore::open(&s, &config).unwrap();
        let mut snapshots = 0;
        for xi in 0..10 {
            for mi in 0..3 {
                let run = run_for(&s, xi, mi);
                live.record(run.instance.clone(), run.eval);
                snapshots += durable.append_with_snapshot(&run, &live).unwrap() as usize;
            }
        }
        assert_eq!(snapshots, 3, "30 runs at snapshot_every=10");
        drop(durable);

        let (recovered, _, recovery) = DurableStore::open(&s, &config).unwrap();
        assert_eq!(recovery.runs, 30);
        assert_eq!(recovery.snapshot_runs, 30, "newest snapshot covers all");
        assert_eq!(recovery.replayed_frames, 0);
        assert_eq!(recovered.len(), 30);
    }

    #[test]
    fn overflow_instances_persist_via_raw_frames() {
        let dir = tmp("overflow");
        let s = space();
        let config = PersistConfig::new(&dir);
        let (mut live, mut durable, _) = DurableStore::open(&s, &config).unwrap();
        let stray = Run {
            instance: bugdoc_core::Instance::new(vec![Value::from(99), Value::from("zz")]),
            eval: EvalResult::of(Outcome::Fail),
        };
        live.record(stray.instance.clone(), stray.eval);
        durable.append(&stray, &s).unwrap();
        let normal = run_for(&s, 1, 1);
        live.record(normal.instance.clone(), normal.eval);
        durable.append(&normal, &s).unwrap();
        drop(durable);

        let (recovered, _, recovery) = DurableStore::open(&s, &config).unwrap();
        assert_eq!(recovery.runs, 2);
        assert_eq!(recovered.lookup(&stray.instance).map(|e| e.outcome), Some(Outcome::Fail));
        assert_eq!(recovered.runs()[0].instance.dense_key(), None, "overflow path");
        assert!(recovered.runs()[1].instance.dense_key().is_some());
    }

    #[test]
    fn space_change_refuses_to_open() {
        let dir = tmp("specchange");
        let s = space();
        let config = PersistConfig::new(&dir);
        let (_, mut durable, _) = DurableStore::open(&s, &config).unwrap();
        durable.append(&run_for(&s, 0, 0), &s).unwrap();
        drop(durable);
        let other = ParamSpace::builder()
            .ordinal("x", (0..11).collect::<Vec<_>>()) // one more value
            .categorical("m", ["a", "b", "c"])
            .build();
        let err = DurableStore::open(&other, &config).unwrap_err();
        assert!(matches!(err, PersistError::SpaceMismatch { .. }));
        assert!(err.to_string().contains("different parameter space"));
    }

    #[test]
    fn directory_lock_refuses_live_holder_and_breaks_stale() {
        let dir = tmp("lock");
        let s = space();
        let config = PersistConfig::new(&dir);
        let (_, durable, _) = DurableStore::open(&s, &config).unwrap();
        // A second open while the first handle lives — even in this same
        // process — must refuse.
        let err = DurableStore::open(&s, &config).unwrap_err();
        assert!(matches!(err, PersistError::Locked { .. }), "{err}");
        assert!(err.to_string().contains("locked by live process"));
        drop(durable); // releases the lock
        let (_, durable, _) = DurableStore::open(&s, &config).unwrap();
        drop(durable);
        // A stale lock from a dead process is broken automatically. (Pid
        // u32::MAX - 2 exceeds any real pid_max, so /proc never has it.)
        std::fs::write(dir.join("lock"), format!("{}", u32::MAX - 2)).unwrap();
        let (_, durable, _) = DurableStore::open(&s, &config).unwrap();
        drop(durable);
        assert!(!dir.join("lock").exists(), "drop released the lock");
    }

    /// Regression test for the stale-lock-break race: with the old
    /// in-place `remove_file` break, two contenders could both read the
    /// dead pid, one would break + re-take the lock, and the other's
    /// delayed delete would destroy the *fresh live* lock — admitting two
    /// writers. The sidecar-rename protocol makes the break exclusive, so
    /// racing a pre-seeded dead-pid lock must admit exactly one winner per
    /// round, every loser must see `Locked`, and the winner's lock file
    /// must still exist (never deleted out from under it).
    #[test]
    fn stale_lock_break_race_admits_exactly_one_writer() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Barrier;
        let dir = tmp("lockrace");
        let s = space();
        let config = PersistConfig::new(&dir);
        // Prime the directory (WAL header etc.) so racing opens do minimal
        // non-lock work, then release.
        drop(DurableStore::open(&s, &config).unwrap());

        const THREADS: usize = 8;
        const ROUNDS: usize = 25;
        for round in 0..ROUNDS {
            // Pre-seed a dead holder's lock for every round so each round
            // exercises the break path, not just plain contention.
            std::fs::write(dir.join("lock"), format!("{}", u32::MAX - 2)).unwrap();
            let holders = AtomicUsize::new(0);
            let winners = AtomicUsize::new(0);
            let barrier = Barrier::new(THREADS);
            std::thread::scope(|scope| {
                for _ in 0..THREADS {
                    scope.spawn(|| {
                        barrier.wait();
                        match DurableStore::open(&s, &config) {
                            Ok((_, durable, _)) => {
                                let live = holders.fetch_add(1, Ordering::SeqCst) + 1;
                                assert_eq!(live, 1, "two writers admitted (round {round})");
                                winners.fetch_add(1, Ordering::SeqCst);
                                // Hold the lock long enough for the losers'
                                // break attempts to land while we are live.
                                std::thread::sleep(std::time::Duration::from_millis(2));
                                assert!(
                                    dir.join("lock").exists(),
                                    "a contender deleted the live winner's lock (round {round})"
                                );
                                holders.fetch_sub(1, Ordering::SeqCst);
                                drop(durable);
                            }
                            Err(PersistError::Locked { .. }) => {}
                            Err(e) => panic!("unexpected acquire failure: {e}"),
                        }
                    });
                }
            });
            // More than one winner is legal only serially (a loser may
            // re-acquire after the first winner drops); overlap is caught
            // by the `live == 1` assert above. At least one contender must
            // break the stale lock and get through.
            assert!(
                winners.load(Ordering::SeqCst) >= 1,
                "no contender broke the stale lock (round {round})"
            );
            assert!(!dir.join("lock").exists(), "winner released on drop");
        }
        // No sidecar or temp litter left behind by the contention.
        for entry in std::fs::read_dir(&dir).unwrap().flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            assert!(
                !name.starts_with("lock."),
                "leftover lock litter: {name}"
            );
        }
    }

    #[test]
    fn close_snapshots_and_releases_the_lock() {
        let dir = tmp("close");
        let s = space();
        let config = PersistConfig::new(&dir);
        let (mut live, mut durable, _) = DurableStore::open(&s, &config).unwrap();
        for xi in 0..5 {
            let run = run_for(&s, xi, 0);
            live.record(run.instance.clone(), run.eval);
            durable.append(&run, &s).unwrap();
        }
        durable.close(&live).unwrap();
        assert!(!dir.join("lock").exists(), "close released the lock");
        let (recovered, _, recovery) = DurableStore::open(&s, &config).unwrap();
        assert_eq!(recovery.runs, 5);
        assert_eq!(recovery.snapshot_runs, 5, "close wrote a final snapshot");
        assert_eq!(recovery.replayed_frames, 0, "no tail left to replay");
        assert_eq!(recovered.len(), 5);
    }

    #[test]
    fn failed_open_releases_the_lock() {
        let dir = tmp("lockfail");
        let s = space();
        let config = PersistConfig::new(&dir);
        let (_, mut durable, _) = DurableStore::open(&s, &config).unwrap();
        durable.append(&run_for(&s, 0, 0), &s).unwrap();
        drop(durable);
        let other = ParamSpace::builder().ordinal("z", [1, 2]).build();
        assert!(matches!(
            DurableStore::open(&other, &config),
            Err(PersistError::SpaceMismatch { .. })
        ));
        // The failed open must not wedge the directory for the real spec.
        let (store, _, _) = DurableStore::open(&s, &config).unwrap();
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn digest_is_order_and_content_sensitive() {
        let a = space_digest(&space());
        let b = space_digest(
            &ParamSpace::builder()
                .categorical("m", ["a", "b", "c"])
                .ordinal("x", (0..10).collect::<Vec<_>>())
                .build(),
        );
        let c = space_digest(
            &ParamSpace::builder()
                .ordinal("x", (0..10).collect::<Vec<_>>())
                .categorical("m", ["a", "b", "d"])
                .build(),
        );
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, space_digest(&space()));
    }
}
