//! Snapshots: one compact file holding a [`ProvenanceStore`]'s entire run
//! history (dense-key arena rows + outcomes + scores, overflow runs as raw
//! values) plus the WAL position it covers, so recovery is snapshot-load +
//! WAL-*tail* replay instead of a full-log replay.
//!
//! File name: `snap-NNNNNNNNNNNN.bds`, the number being the covered run
//! count (monotonic, so lexicographic order is recency order). Layout: a
//! 64-byte header — magic `BDSNAPv1`, space digest, epoch size, run count,
//! WAL segment, WAL offset, retired-epoch watermark (all `u64` LE), then
//! the CRC-32 of those first 56 bytes (`u32` LE) and 4 zero bytes — then
//! one checksummed frame per run in recording order (the same frame format
//! as the WAL). The header carries its own checksum because its WAL
//! position *drives destruction*: replay truncates the log from it and
//! pruning deletes segments below it, so a bit-flipped position must read
//! as "snapshot damaged", never as license to delete valid data.
//! Snapshots are written to a `.tmp` file, fsynced, and renamed into place
//! (with a directory fsync), so a crash mid-write leaves no half-snapshot
//! under the real name and a rename that "happened" is actually on disk
//! before any WAL segment is pruned against it; loading still validates
//! the header checksum and every frame, and falls back to the previous
//! snapshot (then to full WAL replay) if anything is off.

use crate::crc32::crc32;
use crate::frame::{append_frame, next_frame, NextFrame, RunRecord};
use crate::wal::WalPosition;
use crate::{PersistError, SNAP_MAGIC};
use bugdoc_core::{ParamSpace, ProvenanceStore};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Byte length of the snapshot header (checksummed fields + CRC + padding).
const SNAP_HEADER_BYTES: usize = 64;
/// The header prefix the header CRC covers.
const SNAP_HEADER_CRC_AT: usize = 56;

fn snapshot_name(runs: u64) -> String {
    format!("snap-{runs:012}.bds")
}

fn parse_snapshot_name(name: &str) -> Option<u64> {
    name.strip_prefix("snap-")?
        .strip_suffix(".bds")?
        .parse()
        .ok()
}

/// Snapshot files in `dir`, ascending by covered run count.
pub(crate) fn list_snapshots(dir: &Path) -> Result<Vec<u64>, PersistError> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir).map_err(|e| PersistError::io(dir, e))? {
        let entry = entry.map_err(|e| PersistError::io(dir, e))?;
        if let Some(runs) = entry.file_name().to_str().and_then(parse_snapshot_name) {
            out.push(runs);
        }
    }
    out.sort_unstable();
    Ok(out)
}

/// A successfully loaded snapshot.
pub struct LoadedSnapshot {
    /// The rebuilt store (compacted back to the recorded watermark).
    pub store: ProvenanceStore,
    /// Where WAL replay should resume.
    pub wal_position: WalPosition,
    /// Runs the snapshot held.
    pub runs: usize,
}

/// Flushes `dir`'s directory entries to disk, so renames and creates that
/// "happened" survive power loss before anything is destroyed against them.
pub(crate) fn fsync_dir(dir: &Path) -> Result<(), PersistError> {
    std::fs::File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(|e| PersistError::io(dir, e))
}

/// Serializes `store` into `dir`, covering the WAL up to `wal_position`.
/// The file is fsynced before the rename and the directory after it — a
/// snapshot that `load_latest` can see is durably on disk, which is the
/// precondition for pruning the WAL against it. Keeps the newest two
/// snapshots (the previous one is the fallback if this one is damaged).
pub fn write_snapshot(
    dir: &Path,
    digest: u64,
    store: &ProvenanceStore,
    wal_position: WalPosition,
) -> Result<(), PersistError> {
    let runs = store.len() as u64;
    let bytes = snapshot_bytes(digest, store, wal_position)?;

    let tmp = dir.join(format!("{}.tmp", snapshot_name(runs)));
    let fin = dir.join(snapshot_name(runs));
    let mut file = std::fs::File::create(&tmp).map_err(|e| PersistError::io(&tmp, e))?;
    file.write_all(&bytes).map_err(|e| PersistError::io(&tmp, e))?;
    file.sync_all().map_err(|e| PersistError::io(&tmp, e))?;
    drop(file);
    std::fs::rename(&tmp, &fin).map_err(|e| PersistError::io(&fin, e))?;
    fsync_dir(dir)?;

    // Retain the newest two snapshots.
    let all = list_snapshots(dir)?;
    for &old in all.iter().rev().skip(2) {
        let path = dir.join(snapshot_name(old));
        std::fs::remove_file(&path).map_err(|e| PersistError::io(&path, e))?;
    }
    Ok(())
}

/// The serialized image `write_snapshot` persists: checksummed header plus
/// one frame per run. Public so the perf bench can time serialization
/// without the fsync+rename tail (fsync latency is environment noise).
/// Fails only when a run cannot be framed within the codec's bounds
/// ([`PersistError::FrameOverflow`]).
pub fn snapshot_bytes(
    digest: u64,
    store: &ProvenanceStore,
    wal_position: WalPosition,
) -> Result<Vec<u8>, PersistError> {
    let runs = store.len() as u64;
    let mut bytes = Vec::with_capacity(SNAP_HEADER_BYTES + store.len() * 32);
    bytes.extend_from_slice(SNAP_MAGIC);
    bytes.extend_from_slice(&digest.to_le_bytes());
    bytes.extend_from_slice(&(store.epoch_runs() as u64).to_le_bytes());
    bytes.extend_from_slice(&runs.to_le_bytes());
    bytes.extend_from_slice(&wal_position.segment.to_le_bytes());
    bytes.extend_from_slice(&wal_position.offset.to_le_bytes());
    bytes.extend_from_slice(&(store.retired_epochs() as u64).to_le_bytes());
    debug_assert_eq!(bytes.len(), SNAP_HEADER_CRC_AT);
    let header_crc = crc32(&bytes);
    bytes.extend_from_slice(&header_crc.to_le_bytes());
    bytes.extend_from_slice(&[0u8; 4]);
    debug_assert_eq!(bytes.len(), SNAP_HEADER_BYTES);
    let space = store.space();
    for run in store.runs() {
        let record = RunRecord::from_run(run, space);
        append_frame(&record, &mut bytes)?;
    }
    Ok(bytes)
}

/// Loads the newest intact snapshot, trying older ones when the newest is
/// damaged. Returns `None` when no usable snapshot exists (recovery then
/// falls back to full WAL replay). A snapshot whose space digest differs is
/// a hard [`PersistError::SpaceMismatch`] — the directory belongs to a
/// different spec and silently ignoring it would resurrect stale history.
pub fn load_latest(
    dir: &Path,
    digest: u64,
    space: &Arc<ParamSpace>,
    workers: usize,
) -> Result<Option<LoadedSnapshot>, PersistError> {
    let snapshots = list_snapshots(dir)?;
    for &runs in snapshots.iter().rev() {
        let path = dir.join(snapshot_name(runs));
        let bytes = std::fs::read(&path).map_err(|e| PersistError::io(&path, e))?;
        match parse_snapshot(&bytes, digest, space, workers) {
            Ok(loaded) => return Ok(Some(loaded)),
            Err(PersistError::SpaceMismatch {
                expected,
                found,
                ..
            }) => {
                return Err(PersistError::SpaceMismatch {
                    expected,
                    found,
                    path,
                })
            }
            Err(_) => continue, // damaged: fall back to an older snapshot
        }
    }
    Ok(None)
}

/// The WAL position in the *oldest retained* snapshot's header (used to
/// decide which WAL segments are safely prunable). `None` when there is no
/// snapshot or its header is unreadable — pruning then just doesn't happen.
pub(crate) fn load_oldest_position(dir: &Path) -> Result<Option<WalPosition>, PersistError> {
    let snapshots = list_snapshots(dir)?;
    let Some(&oldest) = snapshots.first() else {
        return Ok(None);
    };
    let path = dir.join(snapshot_name(oldest));
    let bytes = std::fs::read(&path).map_err(|e| PersistError::io(&path, e))?;
    if !header_crc_ok(&bytes) {
        // An unreadable header must never license pruning.
        return Ok(None);
    }
    let word = |i: usize| u64::from_le_bytes(bytes[8 + i * 8..16 + i * 8].try_into().unwrap());
    Ok(Some(WalPosition {
        segment: word(3),
        offset: word(4),
    }))
}

/// Magic, length, and header-CRC check — the gate in front of every use of
/// a snapshot header's fields.
fn header_crc_ok(bytes: &[u8]) -> bool {
    bytes.len() >= SNAP_HEADER_BYTES
        && bytes[..8] == *SNAP_MAGIC
        && u32::from_le_bytes(
            bytes[SNAP_HEADER_CRC_AT..SNAP_HEADER_CRC_AT + 4]
                .try_into()
                .unwrap(),
        ) == crc32(&bytes[..SNAP_HEADER_CRC_AT])
}

fn parse_snapshot(
    bytes: &[u8],
    digest: u64,
    space: &Arc<ParamSpace>,
    workers: usize,
) -> Result<LoadedSnapshot, PersistError> {
    let corrupt = || PersistError::CorruptSnapshot;
    if !header_crc_ok(bytes) {
        return Err(corrupt());
    }
    let word = |i: usize| -> u64 {
        u64::from_le_bytes(bytes[8 + i * 8..16 + i * 8].try_into().unwrap())
    };
    let found = word(0);
    if found != digest {
        return Err(PersistError::SpaceMismatch {
            expected: digest,
            found,
            path: PathBuf::new(),
        });
    }
    let epoch_runs = word(1) as usize;
    if epoch_runs == 0 || epoch_runs % 64 != 0 || epoch_runs > 1 << 30 {
        return Err(corrupt());
    }
    let runs = word(2) as usize;
    let wal_position = WalPosition {
        segment: word(3),
        offset: word(4),
    };
    let retired = word(5) as usize;

    // Walk the frames sequentially (framing and validity are inherently
    // serial), then materialize the validated records in parallel batches —
    // any misfit anywhere makes the whole snapshot corrupt, so deferring
    // decode does not change which snapshots load.
    let mut records = Vec::with_capacity(runs.min(1 << 20));
    let mut offset = SNAP_HEADER_BYTES;
    for _ in 0..runs {
        match next_frame(bytes, offset) {
            NextFrame::Frame(record, next) => {
                if !record.fits(space) {
                    return Err(corrupt());
                }
                records.push(record);
                offset = next;
            }
            _ => return Err(corrupt()),
        }
    }
    if offset != bytes.len() {
        return Err(corrupt());
    }
    let mut store = ProvenanceStore::with_epoch_size(space.clone(), epoch_runs);
    store.reserve(records.len());
    for run in crate::frame::materialize_validated(&records, space, workers) {
        if !store.record(run.instance, run.eval) {
            return Err(corrupt()); // duplicate rows: not a valid store image
        }
    }
    // Restore the compaction watermark: retire the same oldest epochs the
    // snapshotting store had already folded into summaries.
    let full = store.len() / store.epoch_runs();
    if retired > 0 {
        if retired > full {
            return Err(corrupt());
        }
        store.compact(full - retired);
    }
    Ok(LoadedSnapshot {
        store,
        wal_position,
        runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bugdoc_core::{EvalResult, Outcome};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bugdoc-snap-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn space() -> Arc<ParamSpace> {
        ParamSpace::builder()
            .ordinal("x", (0..16).collect::<Vec<_>>())
            .ordinal("y", (0..8).collect::<Vec<_>>())
            .build()
    }

    fn filled_store(n: usize) -> ProvenanceStore {
        let s = space();
        let x = s.by_name("x").unwrap();
        let mut store = ProvenanceStore::with_epoch_size(s.clone(), 64);
        for inst in s.instances().take(n) {
            let outcome = Outcome::from_check(inst.get(x) != &bugdoc_core::Value::from(3));
            store.record(inst, EvalResult::of(outcome));
        }
        store
    }

    const POS: WalPosition = WalPosition { segment: 4, offset: 1234 };

    #[test]
    fn snapshot_roundtrips_store_and_position() {
        let dir = tmp("roundtrip");
        let store = filled_store(100);
        write_snapshot(&dir, 11, &store, POS).unwrap();
        let loaded = load_latest(&dir, 11, &space(), 2).unwrap().unwrap();
        assert_eq!(loaded.runs, 100);
        assert_eq!(loaded.wal_position, POS);
        assert_eq!(loaded.store.len(), store.len());
        assert_eq!(loaded.store.num_failing(), store.num_failing());
        for (a, b) in loaded.store.runs().iter().zip(store.runs()) {
            assert_eq!(a.instance, b.instance);
            assert_eq!(a.eval, b.eval);
        }
    }

    #[test]
    fn compaction_watermark_restored() {
        let dir = tmp("watermark");
        let mut store = filled_store(128);
        store.compact(0);
        assert_eq!(store.retired_epochs(), 2);
        write_snapshot(&dir, 1, &store, POS).unwrap();
        let loaded = load_latest(&dir, 1, &space(), 2).unwrap().unwrap();
        assert_eq!(loaded.store.retired_epochs(), 2);
        assert_eq!(loaded.store.epoch_runs(), 64);
    }

    #[test]
    fn damaged_newest_falls_back_to_previous() {
        let dir = tmp("fallback");
        write_snapshot(&dir, 1, &filled_store(50), POS).unwrap();
        let store = filled_store(80);
        write_snapshot(&dir, 1, &store, WalPosition { segment: 9, offset: 9 }).unwrap();
        // Damage the newest file.
        let newest = dir.join(snapshot_name(80));
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&newest, &bytes).unwrap();
        let loaded = load_latest(&dir, 1, &space(), 2).unwrap().unwrap();
        assert_eq!(loaded.runs, 50, "fell back to the intact snapshot");
        assert_eq!(loaded.wal_position, POS);
    }

    #[test]
    fn only_two_snapshots_are_kept() {
        let dir = tmp("retention");
        for n in [10, 20, 30, 40] {
            write_snapshot(&dir, 1, &filled_store(n), POS).unwrap();
        }
        assert_eq!(list_snapshots(&dir).unwrap(), vec![30, 40]);
    }

    /// Any bit flip in the header must invalidate the snapshot: its WAL
    /// position licenses truncation and pruning, so a mangled position has
    /// to read as "damaged", never as a different position.
    #[test]
    fn header_bit_flips_invalidate_the_snapshot() {
        let dir = tmp("headerflip");
        write_snapshot(&dir, 1, &filled_store(20), POS).unwrap();
        let path = dir.join(snapshot_name(20));
        let pristine = std::fs::read(&path).unwrap();
        for byte in 8..SNAP_HEADER_BYTES - 4 {
            // (skip magic: flipping it is covered by the magic check; skip
            // the zero padding, which is not semantically meaningful)
            let mut bytes = pristine.clone();
            bytes[byte] ^= 0x10;
            std::fs::write(&path, &bytes).unwrap();
            assert!(
                load_latest(&dir, 1, &space(), 2).unwrap().is_none(),
                "header byte {byte} flipped yet the snapshot loaded"
            );
            assert_eq!(
                load_oldest_position(&dir).unwrap(),
                None,
                "header byte {byte} flipped yet pruning would trust the position"
            );
        }
        std::fs::write(&path, &pristine).unwrap();
        assert!(load_latest(&dir, 1, &space(), 2).unwrap().is_some());
    }

    #[test]
    fn digest_mismatch_is_hard_error() {
        let dir = tmp("digest");
        write_snapshot(&dir, 1, &filled_store(10), POS).unwrap();
        assert!(matches!(
            load_latest(&dir, 2, &space(), 2),
            Err(PersistError::SpaceMismatch { .. })
        ));
    }

    #[test]
    fn no_snapshot_is_none() {
        let dir = tmp("none");
        assert!(load_latest(&dir, 1, &space(), 2).unwrap().is_none());
    }
}
