//! The segmented write-ahead log: append path, segment rolling, and the
//! torn-tail-truncating replay scan.
//!
//! Segments are named `wal-NNNNNNNN.seg` (zero-padded decimal, ascending;
//! the log is their concatenation in name order). Each segment starts with a
//! 16-byte header — magic `BDWALv1\n` then the space digest (`u64` LE) — and
//! continues with frames (see [`crate::frame`]). A segment rolls when the
//! next frame would push it past the configured byte size, so every frame
//! lives wholly inside one segment and a torn write can only damage the tail
//! of the *last* segment.

use crate::crc32::crc32;
use crate::frame::{
    append_frame, read_u32_at, read_u64_at, RunRecord, FRAME_HEADER_BYTES, MAX_FRAME_BYTES,
};
use crate::{u64_of, PersistError, WAL_MAGIC, WAL_HEADER_BYTES};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Name of segment `index`.
pub(crate) fn segment_name(index: u64) -> String {
    format!("wal-{index:08}.seg")
}

/// Parses a segment file name back to its index.
pub(crate) fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".seg")?
        .parse()
        .ok()
}

/// Segment indices present in `dir`, ascending.
pub(crate) fn list_segments(dir: &Path) -> Result<Vec<u64>, PersistError> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir).map_err(|e| PersistError::io(dir, e))? {
        let entry = entry.map_err(|e| PersistError::io(dir, e))?;
        if let Some(idx) = entry.file_name().to_str().and_then(parse_segment_name) {
            out.push(idx);
        }
    }
    out.sort_unstable();
    Ok(out)
}

fn segment_header(digest: u64) -> [u8; WAL_HEADER_BYTES] {
    let mut h = [0u8; WAL_HEADER_BYTES];
    let (magic, dig) = h.split_at_mut(WAL_MAGIC.len());
    magic.copy_from_slice(WAL_MAGIC);
    dig.copy_from_slice(&digest.to_le_bytes());
    h
}

/// A byte position in the log: `(segment index, offset within segment)`.
/// Offsets always point at a frame boundary (or the header end).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalPosition {
    /// Segment index (`wal-NNNNNNNN.seg`).
    pub segment: u64,
    /// Byte offset within the segment.
    pub offset: u64,
}

/// The append half of the log.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    digest: u64,
    segment_bytes: u64,
    seg_index: u64,
    seg_len: u64,
    file: File,
    /// Reusable frame-encoding scratch.
    buf: Vec<u8>,
}

impl Wal {
    /// Opens the log for appending at its current tail (creating the first
    /// segment if none exists). Call only after [`replay`] has truncated any
    /// torn tail — this positions at raw end-of-file.
    pub fn open(dir: &Path, digest: u64, segment_bytes: u64) -> Result<Wal, PersistError> {
        let segments = list_segments(dir)?;
        let (seg_index, create) = match segments.last() {
            Some(&last) => (last, false),
            None => (1, true),
        };
        let path = dir.join(segment_name(seg_index));
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| PersistError::io(&path, e))?;
        let mut seg_len = file
            .metadata()
            .map_err(|e| PersistError::io(&path, e))?
            .len();
        if create || seg_len == 0 {
            file.write_all(&segment_header(digest))
                .map_err(|e| PersistError::io(&path, e))?;
            seg_len = u64_of(WAL_HEADER_BYTES);
            crate::snapshot::fsync_dir(dir)?;
        }
        Ok(Wal {
            dir: dir.to_path_buf(),
            digest,
            segment_bytes: segment_bytes.max(u64_of(WAL_HEADER_BYTES) + 1),
            seg_index,
            seg_len,
            file,
            buf: Vec::new(),
        })
    }

    /// The position the *next* appended frame will start at.
    pub fn position(&self) -> WalPosition {
        WalPosition {
            segment: self.seg_index,
            offset: self.seg_len,
        }
    }

    /// Appends one record as a checksummed frame, rolling to a fresh segment
    /// first when the current one is at its byte size.
    pub fn append(&mut self, record: &RunRecord) -> Result<(), PersistError> {
        self.buf.clear();
        append_frame(record, &mut self.buf)?;
        if self.seg_len > u64_of(WAL_HEADER_BYTES)
            && self.seg_len + u64_of(self.buf.len()) > self.segment_bytes
        {
            self.roll()?;
        }
        let path = self.dir.join(segment_name(self.seg_index));
        self.file
            .write_all(&self.buf)
            .map_err(|e| PersistError::io(&path, e))?;
        self.seg_len += u64_of(self.buf.len());
        Ok(())
    }

    /// Flushes buffered OS state to disk (`fsync`). Called at snapshot
    /// boundaries; per-append fsync would dominate the append cost.
    pub fn sync(&mut self) -> Result<(), PersistError> {
        let path = self.dir.join(segment_name(self.seg_index));
        self.file.sync_data().map_err(|e| PersistError::io(&path, e))
    }

    fn roll(&mut self) -> Result<(), PersistError> {
        self.seg_index += 1;
        let path = self.dir.join(segment_name(self.seg_index));
        let mut file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&path)
            .map_err(|e| PersistError::io(&path, e))?;
        file.write_all(&segment_header(self.digest))
            .map_err(|e| PersistError::io(&path, e))?;
        // Make the new directory entry durable: segment names must never
        // survive out of order, or recovery would see a gap.
        crate::snapshot::fsync_dir(&self.dir)?;
        self.file = file;
        self.seg_len = u64_of(WAL_HEADER_BYTES);
        Ok(())
    }

    /// Deletes every segment whose index is below `keep_from` — segments
    /// wholly covered by a retained snapshot.
    pub fn prune_below(&mut self, keep_from: u64) -> Result<usize, PersistError> {
        let mut removed = 0;
        for idx in list_segments(&self.dir)? {
            if idx < keep_from && idx != self.seg_index {
                let path = self.dir.join(segment_name(idx));
                std::fs::remove_file(&path).map_err(|e| PersistError::io(&path, e))?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

/// Walks one frame header at `offset`: returns the frame's payload span on
/// success, `Err(())` when the header is short, oversized, or overruns the
/// segment (all read as a torn tail at `offset`).
#[inline]
fn frame_span(bytes: &[u8], offset: usize) -> Result<(usize, usize), ()> {
    if offset + FRAME_HEADER_BYTES > bytes.len() {
        return Err(());
    }
    let len = read_u32_at(bytes, offset).ok_or(())? as usize;
    if len > MAX_FRAME_BYTES {
        return Err(());
    }
    let payload_start = offset + FRAME_HEADER_BYTES;
    match payload_start.checked_add(len).filter(|&e| e <= bytes.len()) {
        Some(end) => Ok((payload_start, end)),
        None => Err(()),
    }
}

/// Checksums and decodes one frame's payload span. `None` means the frame
/// is corrupt (bad CRC or undecodable payload).
#[inline]
fn decode_frame(bytes: &[u8], payload_start: usize, end: usize) -> Option<RunRecord> {
    let payload = bytes.get(payload_start..end)?;
    let crc = read_u32_at(bytes, payload_start.checked_sub(4)?)?;
    if crc32(payload) != crc {
        return None;
    }
    RunRecord::decode_payload(payload).ok()
}

/// Single-pass segment scan: walk each header, checksum + decode the payload
/// in place, and feed the record straight to `sink` — no staging. Returns
/// `(accepted frames, stop offset)`; a `Some` stop offset is the first byte
/// of the torn, undecodable, or sink-rejected frame.
fn scan_streaming(
    bytes: &[u8],
    start: usize,
    sink: &mut impl FnMut(RunRecord) -> bool,
) -> (usize, Option<usize>) {
    let mut frames = 0;
    let mut offset = start;
    while offset < bytes.len() {
        let Ok((payload_start, end)) = frame_span(bytes, offset) else {
            return (frames, Some(offset));
        };
        let Some(record) = decode_frame(bytes, payload_start, end) else {
            return (frames, Some(offset));
        };
        if !sink(record) {
            return (frames, Some(offset));
        }
        frames += 1;
        offset = end;
    }
    (frames, None)
}

/// Scans one segment's frames from `start`, feeding each valid record to
/// `sink` in log order. Returns `(accepted frames, stop offset)` — `None`
/// for a clean end of segment, `Some(offset)` for the first bad byte: a
/// torn or undecodable frame, or one the sink rejected (truncated alike).
///
/// With `workers <= 1`, or a segment below the fan-out threshold, this is
/// the fully streaming [`scan_streaming`] pass. Otherwise the frame
/// *boundaries* come from a cheap sequential walk of the `[len][crc]`
/// headers (no checksum, no payload decode); the expensive per-frame work —
/// CRC32 + payload decode — is then fanned out across `workers` in
/// contiguous chunks, which is safe because frames are independent byte
/// spans and the walk already fixed their order. Results are identical to
/// the streaming pass: a frame that fails its checksum or decode
/// invalidates itself and everything after it, because the stitched results
/// are cut at the first failure in log order. (A corrupt *length* field
/// derails the boundary walk, but only at or after the corrupt frame — the
/// walk stops there and everything before it is still valid.)
fn scan_segment(
    bytes: &[u8],
    start: usize,
    workers: usize,
    sink: &mut impl FnMut(RunRecord) -> bool,
) -> (usize, Option<usize>) {
    if workers <= 1 {
        return scan_streaming(bytes, start, sink);
    }

    // Phase 1: frame boundaries.
    let mut spans: Vec<(usize, usize)> = Vec::new(); // (frame start, frame end)
    let mut offset = start;
    let mut torn_at = None;
    while offset < bytes.len() {
        match frame_span(bytes, offset) {
            Ok((_, end)) => {
                spans.push((offset, end));
                offset = end;
            }
            Err(()) => {
                torn_at = Some(offset);
                break;
            }
        }
    }
    if spans.len() < crate::frame::PARALLEL_DECODE_MIN_RECORDS {
        return scan_streaming(bytes, start, sink);
    }

    // Phase 2: checksum + decode across workers.
    let decode = |&(start, end): &(usize, usize)| -> Option<RunRecord> {
        decode_frame(bytes, start + FRAME_HEADER_BYTES, end)
    };
    let per_worker = spans.len().div_ceil(workers);
    let mut decoded: Vec<Option<RunRecord>> = Vec::with_capacity(spans.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = spans
            .chunks(per_worker)
            .map(|chunk| scope.spawn(move || chunk.iter().map(decode).collect::<Vec<_>>()))
            .collect();
        for handle in handles {
            // lint: allow(W003, reason = "join() fails only if the worker panicked; re-raising that panic on the coordinating thread is the intended propagation")
            decoded.extend(handle.join().expect("frame decode worker panicked"));
        }
    });

    // Stitch in log order, cutting at the first bad or rejected frame: it
    // and every later frame (even ones that decoded fine) read as the torn
    // tail.
    let mut frames = 0;
    for (span, record) in spans.into_iter().zip(decoded) {
        match record {
            Some(r) => {
                if !sink(r) {
                    return (frames, Some(span.0));
                }
                frames += 1;
            }
            None => return (frames, Some(span.0)),
        }
    }
    (frames, torn_at)
}

/// What a [`replay`] scan found.
#[derive(Debug, Default)]
pub struct ReplaySummary {
    /// Checksum-valid frames yielded.
    pub frames: usize,
    /// Bytes discarded as a torn tail (including any whole later segments).
    pub truncated_bytes: u64,
}

/// Replays the log from `from` (or from the first segment's header end when
/// `None`), calling `sink` for each valid frame in order. On the first torn
/// or undecodable frame the scan stops, **truncates** the damaged segment at
/// the last valid frame boundary, and deletes every later segment — so a
/// reopened log is always an exact prefix of what was appended.
///
/// `sink` may reject a record (returning `false`) to signal that the frame
/// is semantically invalid for the space (e.g. a dense key that no longer
/// fits); the scan treats that exactly like a torn frame.
pub fn replay(
    dir: &Path,
    digest: u64,
    from: Option<WalPosition>,
    sink: impl FnMut(RunRecord) -> bool,
) -> Result<ReplaySummary, PersistError> {
    replay_with_workers(dir, digest, from, 1, sink)
}

/// [`replay`] with the per-frame CRC + decode work fanned out across
/// `workers` threads on segments large enough to pay for them (see
/// [`scan_segment`]); `sink` still observes every record sequentially in
/// log order, and torn-tail truncation is byte-identical to the sequential
/// scan. `workers <= 1` is exactly [`replay`].
pub fn replay_with_workers(
    dir: &Path,
    digest: u64,
    from: Option<WalPosition>,
    workers: usize,
    mut sink: impl FnMut(RunRecord) -> bool,
) -> Result<ReplaySummary, PersistError> {
    let mut summary = ReplaySummary::default();
    let segments = list_segments(dir)?;
    let start_seg = from.map(|p| p.segment).unwrap_or(0);
    // Replayed segment indices must be gapless (and anchored: segment 1 for
    // a full replay, the covered segment for a snapshot-tail replay). A
    // missing segment means the directory lost history *in the middle* —
    // concatenating across the hole would fabricate a log that never
    // existed, so it is a hard error, never a silent skip.
    let mut expected_next: Option<u64> = None;
    let mut torn_at: Option<(usize, u64)> = None; // (position in `segments`, offset)
    'segments: for (si, &idx) in segments.iter().enumerate() {
        if idx < start_seg {
            continue;
        }
        let expected = expected_next.unwrap_or(if from.is_some() { start_seg } else { 1 });
        if idx != expected {
            return Err(PersistError::MissingSegment {
                expected,
                found: idx,
                dir: dir.to_path_buf(),
            });
        }
        expected_next = Some(idx + 1);
        let path = dir.join(segment_name(idx));
        let bytes = std::fs::read(&path).map_err(|e| PersistError::io(&path, e))?;
        // Header check: a short or mangled header reads as a torn segment
        // (crash during creation); a *valid* header with a different digest
        // is a spec mismatch and aborts recovery without destroying data.
        let header_digest = if bytes.starts_with(WAL_MAGIC) {
            read_u64_at(&bytes, WAL_MAGIC.len()).filter(|_| bytes.len() >= WAL_HEADER_BYTES)
        } else {
            None
        };
        let Some(found) = header_digest else {
            torn_at = Some((si, 0));
            break 'segments;
        };
        if found != digest {
            return Err(PersistError::SpaceMismatch {
                expected: digest,
                found,
                path,
            });
        }
        let mut offset = WAL_HEADER_BYTES;
        if let Some(p) = from {
            if idx == p.segment {
                if p.offset as usize > bytes.len() {
                    // The snapshot claims coverage past this segment's end —
                    // the tail it covered is gone. Nothing newer to replay.
                    torn_at = Some((si, u64_of(bytes.len())));
                    break 'segments;
                }
                offset = (p.offset as usize).max(WAL_HEADER_BYTES);
            }
        }
        let (frames, stop) = scan_segment(&bytes, offset, workers, &mut sink);
        summary.frames += frames;
        match stop {
            None => continue 'segments,
            Some(stop) => {
                torn_at = Some((si, u64_of(stop)));
                break 'segments;
            }
        }
    }
    if let Some((si, offset)) = torn_at {
        // Truncate the damaged segment to its last valid frame boundary
        // (drop it wholesale when even its header is bad) and drop every
        // later segment wholesale.
        for (pos, &idx) in segments.iter().enumerate().skip(si) {
            let path = dir.join(segment_name(idx));
            let len = std::fs::metadata(&path)
                .map_err(|e| PersistError::io(&path, e))?
                .len();
            let keep = if pos == si { offset } else { 0 };
            summary.truncated_bytes += len.saturating_sub(keep);
            if keep == 0 {
                std::fs::remove_file(&path).map_err(|e| PersistError::io(&path, e))?;
            } else {
                let file = OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .map_err(|e| PersistError::io(&path, e))?;
                file.set_len(keep).map_err(|e| PersistError::io(&path, e))?;
            }
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::RecordKey;
    use bugdoc_core::Outcome;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bugdoc-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn record(i: u32) -> RunRecord {
        RunRecord {
            key: RecordKey::Dense(vec![i, i + 1].into_boxed_slice()),
            outcome: if i % 3 == 0 { Outcome::Fail } else { Outcome::Succeed },
            score: Some(i as f64 / 10.0),
        }
    }

    fn replay_all(dir: &Path, digest: u64) -> (Vec<RunRecord>, ReplaySummary) {
        let mut got = Vec::new();
        let summary = replay(dir, digest, None, |r| {
            got.push(r);
            true
        })
        .unwrap();
        (got, summary)
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let dir = tmp("roundtrip");
        let mut wal = Wal::open(&dir, 42, 1 << 20).unwrap();
        let records: Vec<RunRecord> = (0..100).map(record).collect();
        for r in &records {
            wal.append(r).unwrap();
        }
        drop(wal);
        let (got, summary) = replay_all(&dir, 42);
        assert_eq!(got, records);
        assert_eq!(summary.frames, 100);
        assert_eq!(summary.truncated_bytes, 0);
    }

    #[test]
    fn segments_roll_and_concatenate() {
        let dir = tmp("roll");
        // Tiny segments: every few frames roll a new file.
        let mut wal = Wal::open(&dir, 7, 128).unwrap();
        let records: Vec<RunRecord> = (0..64).map(record).collect();
        for r in &records {
            wal.append(r).unwrap();
        }
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() > 4, "expected many segments, got {segments:?}");
        assert_eq!(segments[0], 1);
        drop(wal);
        let (got, _) = replay_all(&dir, 7);
        assert_eq!(got, records);
        // Reopen appends to the tail, not a fresh segment 1.
        let mut wal = Wal::open(&dir, 7, 128).unwrap();
        assert_eq!(wal.position().segment, *segments.last().unwrap());
        wal.append(&record(64)).unwrap();
        drop(wal);
        let (got, _) = replay_all(&dir, 7);
        assert_eq!(got.len(), 65);
    }

    #[test]
    fn torn_tail_is_truncated_exactly_once() {
        let dir = tmp("torn");
        let mut wal = Wal::open(&dir, 9, 1 << 20).unwrap();
        for i in 0..10 {
            wal.append(&record(i)).unwrap();
        }
        drop(wal);
        // Chop 3 bytes off the single segment: the last frame is torn.
        let path = dir.join(segment_name(1));
        let len = std::fs::metadata(&path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 3)
            .unwrap();
        let (got, summary) = replay_all(&dir, 9);
        assert_eq!(got.len(), 9);
        assert!(summary.truncated_bytes > 0);
        // The file was truncated at the boundary: a second replay is clean.
        let (again, summary) = replay_all(&dir, 9);
        assert_eq!(again.len(), 9);
        assert_eq!(summary.truncated_bytes, 0);
        // And appending after recovery resumes at the boundary.
        let mut wal = Wal::open(&dir, 9, 1 << 20).unwrap();
        wal.append(&record(99)).unwrap();
        drop(wal);
        let (got, _) = replay_all(&dir, 9);
        assert_eq!(got.len(), 10);
        assert!(matches!(&got[9].key, RecordKey::Dense(k) if k[0] == 99));
    }

    #[test]
    fn corruption_mid_log_drops_later_segments() {
        let dir = tmp("midcorrupt");
        let mut wal = Wal::open(&dir, 5, 160).unwrap();
        for i in 0..40 {
            wal.append(&record(i)).unwrap();
        }
        drop(wal);
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() >= 3);
        // Corrupt one byte in the middle segment's first frame.
        let victim = dir.join(segment_name(segments[segments.len() / 2]));
        let mut bytes = std::fs::read(&victim).unwrap();
        bytes[WAL_HEADER_BYTES + 9] ^= 0xFF;
        std::fs::write(&victim, &bytes).unwrap();
        let (got, summary) = replay_all(&dir, 5);
        assert!(got.len() < 40);
        assert!(summary.truncated_bytes > 0);
        // Prefix property: the recovered records are the first `len` appended.
        for (i, r) in got.iter().enumerate() {
            assert_eq!(r, &record(i as u32));
        }
        // Later segments are gone; the log ends at the truncation point.
        let remaining = list_segments(&dir).unwrap();
        assert!(remaining.len() < segments.len());
    }

    #[test]
    fn missing_middle_segment_is_an_error_not_a_splice() {
        let dir = tmp("gap");
        let mut wal = Wal::open(&dir, 4, 160).unwrap();
        for i in 0..40 {
            wal.append(&record(i)).unwrap();
        }
        drop(wal);
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() >= 3);
        std::fs::remove_file(dir.join(segment_name(segments[1]))).unwrap();
        let err = replay(&dir, 4, None, |_| true).unwrap_err();
        assert!(
            matches!(err, PersistError::MissingSegment { expected, found, .. }
                if expected == segments[1] && found == segments[2]),
            "{err}"
        );
        assert!(err.to_string().contains("missing"));
        // A missing *anchor* segment (full replay not starting at 1) is the
        // same refusal.
        std::fs::remove_file(dir.join(segment_name(1))).unwrap();
        let err = replay(&dir, 4, None, |_| true).unwrap_err();
        assert!(matches!(err, PersistError::MissingSegment { expected: 1, .. }), "{err}");
        // But a tail replay anchored past the gap still works.
        let last = *list_segments(&dir).unwrap().last().unwrap();
        let mut n = 0;
        replay(&dir, 4, Some(WalPosition { segment: last, offset: 0 }), |_| {
            n += 1;
            true
        })
        .unwrap();
        assert!(n > 0);
    }

    #[test]
    fn digest_mismatch_is_an_error_not_truncation() {
        let dir = tmp("digest");
        let mut wal = Wal::open(&dir, 1, 1 << 20).unwrap();
        wal.append(&record(0)).unwrap();
        drop(wal);
        let err = replay(&dir, 2, None, |_| true).unwrap_err();
        assert!(matches!(err, PersistError::SpaceMismatch { .. }));
        // Nothing was deleted or truncated.
        let (got, _) = replay_all(&dir, 1);
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn replay_from_position_skips_covered_prefix() {
        let dir = tmp("from");
        let mut wal = Wal::open(&dir, 3, 1 << 20).unwrap();
        for i in 0..5 {
            wal.append(&record(i)).unwrap();
        }
        let mid = wal.position();
        for i in 5..8 {
            wal.append(&record(i)).unwrap();
        }
        drop(wal);
        let mut got = Vec::new();
        replay(&dir, 3, Some(mid), |r| {
            got.push(r);
            true
        })
        .unwrap();
        assert_eq!(got, (5..8).map(record).collect::<Vec<_>>());
    }

    #[test]
    fn prune_below_removes_covered_segments() {
        let dir = tmp("prune");
        let mut wal = Wal::open(&dir, 3, 160).unwrap();
        for i in 0..40 {
            wal.append(&record(i)).unwrap();
        }
        let pos = wal.position();
        let before = list_segments(&dir).unwrap().len();
        let removed = wal.prune_below(pos.segment).unwrap();
        assert!(removed > 0);
        assert_eq!(list_segments(&dir).unwrap().len(), before - removed);
        // The tail from the kept position still replays.
        let mut got = Vec::new();
        replay(&dir, 3, Some(WalPosition { segment: pos.segment, offset: 0 }), |r| {
            got.push(r);
            true
        })
        .unwrap();
        assert!(!got.is_empty() || pos.offset == WAL_HEADER_BYTES as u64);
    }
}
