//! The synthetic pipeline generator (paper §5.1).
//!
//! "The pipelines have between three and fifteen parameters, and each
//! parameter has between five and thirty values. The parameter values are
//! either ordinal (e.g., temperature) or categorical (e.g., color), each with
//! probability 1/2. Each synthetic pipeline consists of a parameter space
//! and a definitive root cause of failure automatically generated as follows:
//!
//! 1. We uniformly sample a non-empty subset of parameters to be part of a
//!    conjunction.
//! 2. For each parameter in the subset, we uniformly sample from its values.
//! 3. For each parameter-value pair, we uniformly sample from the set of
//!    comparators C = {=, ≤, >, ≠}.
//! 4. After adding a conjunctive root cause, we add another conjunctive root
//!    cause with a certain probability."
//!
//! Plants are validated so the derived ground truth is exact (see
//! `DESIGN.md` §8): each conjunct must be satisfiable and non-tautological,
//! conjuncts of a disjunction use pairwise disjoint parameter subsets, and
//! the overall failure fraction is bounded away from 0 and 1 so both
//! outcomes remain observable.

use crate::truth::Truth;
use bugdoc_core::{
    Comparator, Conjunction, Dnf, DomainKind, EvalResult, Instance, Outcome, ParamId, ParamSpace,
    Predicate, Value,
};
use bugdoc_engine::{Pipeline, PipelineError, SimTime};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// The three root-cause shapes the evaluation distinguishes (paper §5.1):
/// a single triple, a single conjunction, a disjunction of conjunctions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CauseScenario {
    /// One `(parameter, comparator, value)` triple.
    SingleTriple,
    /// One conjunction of at least two triples.
    SingleConjunction,
    /// At least two conjunctions (step 4's extra plants are guaranteed).
    DisjunctionOfConjunctions,
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Parameter-count range (paper: 3–15).
    pub n_params: (usize, usize),
    /// Values-per-parameter range (paper: 5–30).
    pub n_values: (usize, usize),
    /// Cause shape.
    pub scenario: CauseScenario,
    /// Triples per conjunction in the conjunction scenarios (upper bound;
    /// also capped by the available disjoint parameters).
    pub max_conjunction_len: usize,
    /// Extra-disjunct probability for step 4 (beyond the guaranteed second
    /// conjunct of the disjunction scenario).
    pub extra_disjunct_prob: f64,
    /// Reject plants whose failure fraction exceeds this (both evaluation
    /// outcomes must stay reachable).
    pub max_failure_fraction: f64,
    /// Simulated cost per instance.
    pub instance_cost: SimTime,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            n_params: (3, 15),
            n_values: (5, 30),
            scenario: CauseScenario::SingleConjunction,
            max_conjunction_len: 3,
            extra_disjunct_prob: 0.5,
            max_failure_fraction: 0.95,
            instance_cost: SimTime::from_secs(1.0),
        }
    }
}

/// A generated synthetic pipeline: a parameter space, a planted failure
/// condition, and the derived exact ground truth.
pub struct SyntheticPipeline {
    space: Arc<ParamSpace>,
    truth: Truth,
    cost: SimTime,
    name: String,
}

impl SyntheticPipeline {
    /// Generates a pipeline from a seed. All sampling is reproducible.
    pub fn generate(config: &SynthConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let space = sample_space(config, &mut rng);
        let truth = sample_truth(config, &space, &mut rng);
        SyntheticPipeline {
            space,
            truth,
            cost: config.instance_cost,
            name: format!("synthetic-{seed}"),
        }
    }

    /// The planted ground truth.
    pub fn truth(&self) -> &Truth {
        &self.truth
    }

    /// Convenience: seeds a history with `n_fail` failing and `n_succeed`
    /// succeeding instances — the "previously run" set `G` of the problem
    /// definition. Duplicates are retried a bounded number of times.
    pub fn seed_history(
        &self,
        n_fail: usize,
        n_succeed: usize,
        seed: u64,
    ) -> Vec<(Instance, EvalResult)> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out: Vec<(Instance, EvalResult)> = Vec::new();
        let push_unique = |inst: Instance, out: &mut Vec<(Instance, EvalResult)>| {
            if !out.iter().any(|(i, _)| i == &inst) {
                let outcome = Outcome::from_check(!self.truth.fails(&inst));
                out.push((inst, EvalResult::of(outcome)));
                true
            } else {
                false
            }
        };
        let mut guard = 0;
        while out.iter().filter(|(_, e)| e.outcome.is_fail()).count() < n_fail && guard < 200 {
            guard += 1;
            if let Some(inst) = self.truth.sample_failing(&self.space, &mut rng) {
                push_unique(inst, &mut out);
            } else {
                break;
            }
        }
        let mut guard = 0;
        while out.iter().filter(|(_, e)| e.outcome.is_succeed()).count() < n_succeed
            && guard < 200
        {
            guard += 1;
            if let Some(inst) = self.truth.sample_succeeding(&self.space, &mut rng) {
                push_unique(inst, &mut out);
            } else {
                break;
            }
        }
        out
    }
}

impl Pipeline for SyntheticPipeline {
    fn space(&self) -> &Arc<ParamSpace> {
        &self.space
    }

    fn execute(&self, instance: &Instance) -> Result<EvalResult, PipelineError> {
        Ok(EvalResult::of(Outcome::from_check(
            !self.truth.fails(instance),
        )))
    }

    fn cost(&self, _instance: &Instance) -> SimTime {
        self.cost
    }

    fn name(&self) -> &str {
        &self.name
    }
}

fn sample_space(config: &SynthConfig, rng: &mut StdRng) -> Arc<ParamSpace> {
    let n_params = rng.gen_range(config.n_params.0..=config.n_params.1);
    let mut builder = ParamSpace::builder();
    for i in 0..n_params {
        let n_values = rng.gen_range(config.n_values.0..=config.n_values.1);
        if rng.gen_bool(0.5) {
            // Ordinal: evenly spaced floats (e.g. a temperature knob).
            builder = builder.ordinal(
                format!("p{i}"),
                (0..n_values).map(|v| Value::float(v as f64 + 1.0)),
            );
        } else {
            // Categorical: opaque labels, Example 4's "p31", "p32" style.
            builder = builder.categorical(
                format!("p{i}"),
                (0..n_values).map(|v| Value::str(format!("p{i}v{}", v + 1))),
            );
        }
    }
    builder.build()
}

fn sample_truth(config: &SynthConfig, space: &Arc<ParamSpace>, rng: &mut StdRng) -> Truth {
    // Rejection-sample until the plant passes the validity checks; the
    // acceptance region is large, so this terminates fast in practice. A
    // generous attempt cap turns pathological configs into a loud failure.
    for _attempt in 0..1000 {
        let n_conjuncts = match config.scenario {
            CauseScenario::SingleTriple | CauseScenario::SingleConjunction => 1,
            CauseScenario::DisjunctionOfConjunctions => {
                let mut n = 2; // step 4's "certain probability", guaranteed once
                while rng.gen_bool(config.extra_disjunct_prob) && n < 4 {
                    n += 1;
                }
                n
            }
        };

        // Pairwise disjoint parameter subsets keep the ground truth exact.
        let mut available: Vec<ParamId> = space.ids().collect();
        available.shuffle(rng);
        let mut conjuncts: Vec<Conjunction> = Vec::new();
        let mut ok = true;
        for _ in 0..n_conjuncts {
            let want = match config.scenario {
                CauseScenario::SingleTriple => 1,
                _ => rng.gen_range(1..=config.max_conjunction_len),
            }
            .max(if config.scenario == CauseScenario::SingleConjunction {
                2
            } else {
                1
            });
            if available.len() < want {
                ok = false;
                break;
            }
            let params: Vec<ParamId> = available.drain(..want).collect();
            let preds: Vec<Predicate> = params
                .iter()
                .map(|&p| sample_predicate(space, p, rng))
                .collect();
            conjuncts.push(Conjunction::new(preds));
        }
        if !ok {
            continue;
        }

        let truth = Truth::new(space, Dnf::new(conjuncts.clone()));
        // Validity: every conjunct survived canonicalization (satisfiable),
        // none is a tautology, and the failure fraction is in range.
        if truth.len() != conjuncts.len() {
            continue;
        }
        if truth.minimal_causes().iter().any(|c| c.is_top()) {
            continue;
        }
        let frac = truth.failure_fraction(space);
        if frac <= 0.0 || frac > config.max_failure_fraction {
            continue;
        }
        return truth;
    }
    panic!("could not plant a valid root cause in 1000 attempts — space too constrained");
}

/// Step 2 + 3: a uniform value and a uniform comparator (categorical domains
/// only admit `=` and `≠`).
fn sample_predicate(space: &ParamSpace, p: ParamId, rng: &mut StdRng) -> Predicate {
    let domain = space.domain(p);
    let value = domain.value(rng.gen_range(0..domain.len())).clone();
    let cmp = match domain.kind() {
        DomainKind::Ordinal => Comparator::ALL[rng.gen_range(0..4usize)],
        DomainKind::Categorical => Comparator::CATEGORICAL[rng.gen_range(0..2usize)],
    };
    Predicate::new(p, cmp, value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_within_paper_ranges() {
        for seed in 0..20 {
            let pipe = SyntheticPipeline::generate(&SynthConfig::default(), seed);
            let space = pipe.space();
            assert!((3..=15).contains(&space.len()), "seed {seed}");
            for p in space.ids() {
                assert!((5..=30).contains(&space.domain(p).len()), "seed {seed}");
            }
        }
    }

    #[test]
    fn single_triple_scenario_shape() {
        for seed in 0..20 {
            let pipe = SyntheticPipeline::generate(
                &SynthConfig {
                    scenario: CauseScenario::SingleTriple,
                    ..Default::default()
                },
                seed,
            );
            assert_eq!(pipe.truth().len(), 1);
            assert_eq!(pipe.truth().failure_dnf().conjuncts()[0].len(), 1);
        }
    }

    #[test]
    fn single_conjunction_scenario_shape() {
        for seed in 0..20 {
            let pipe = SyntheticPipeline::generate(
                &SynthConfig {
                    scenario: CauseScenario::SingleConjunction,
                    ..Default::default()
                },
                seed,
            );
            assert_eq!(pipe.truth().len(), 1);
            assert!(pipe.truth().failure_dnf().conjuncts()[0].len() >= 2);
        }
    }

    #[test]
    fn disjunction_scenario_shape() {
        for seed in 0..20 {
            let pipe = SyntheticPipeline::generate(
                &SynthConfig {
                    scenario: CauseScenario::DisjunctionOfConjunctions,
                    ..Default::default()
                },
                seed,
            );
            assert!(pipe.truth().len() >= 2, "seed {seed}");
            // Conjuncts use pairwise disjoint parameter sets.
            let conjuncts = pipe.truth().failure_dnf().conjuncts();
            for (i, a) in conjuncts.iter().enumerate() {
                for b in conjuncts.iter().skip(i + 1) {
                    let pa: std::collections::HashSet<_> =
                        a.predicates().iter().map(|p| p.param).collect();
                    for pred in b.predicates() {
                        assert!(!pa.contains(&pred.param), "seed {seed}: overlapping params");
                    }
                }
            }
        }
    }

    #[test]
    fn evaluation_matches_truth() {
        let pipe = SyntheticPipeline::generate(&SynthConfig::default(), 7);
        let mut rng = StdRng::seed_from_u64(1);
        let space = pipe.space().clone();
        for _ in 0..20 {
            let f = pipe.truth().sample_failing(&space, &mut rng).unwrap();
            assert!(pipe.execute(&f).unwrap().outcome.is_fail());
            let g = pipe.truth().sample_succeeding(&space, &mut rng).unwrap();
            assert!(pipe.execute(&g).unwrap().outcome.is_succeed());
        }
    }

    #[test]
    fn failure_fraction_is_bounded() {
        for seed in 0..30 {
            let pipe = SyntheticPipeline::generate(&SynthConfig::default(), seed);
            let frac = pipe.truth().failure_fraction(pipe.space());
            assert!(frac > 0.0 && frac <= 0.95, "seed {seed}: fraction {frac}");
        }
    }

    #[test]
    fn reproducible_per_seed() {
        let a = SyntheticPipeline::generate(&SynthConfig::default(), 99);
        let b = SyntheticPipeline::generate(&SynthConfig::default(), 99);
        assert_eq!(a.space(), b.space());
        assert_eq!(
            a.truth().failure_dnf().display(a.space()).to_string(),
            b.truth().failure_dnf().display(b.space()).to_string()
        );
    }

    #[test]
    fn seed_history_contains_both_outcomes() {
        let pipe = SyntheticPipeline::generate(&SynthConfig::default(), 3);
        let history = pipe.seed_history(3, 5, 42);
        let fails = history.iter().filter(|(_, e)| e.outcome.is_fail()).count();
        let succeeds = history.iter().filter(|(_, e)| e.outcome.is_succeed()).count();
        assert_eq!(fails, 3);
        assert_eq!(succeeds, 5);
        // No duplicates.
        let set: std::collections::HashSet<_> = history.iter().map(|(i, _)| i).collect();
        assert_eq!(set.len(), history.len());
    }

    #[test]
    fn categorical_causes_use_valid_comparators() {
        for seed in 0..40 {
            let pipe = SyntheticPipeline::generate(&SynthConfig::default(), seed);
            let space = pipe.space();
            for conjunct in pipe.truth().failure_dnf().conjuncts() {
                for pred in conjunct.predicates() {
                    if space.domain(pred.param).kind() == DomainKind::Categorical {
                        assert!(!pred.cmp.needs_order());
                    }
                }
            }
        }
    }
}
