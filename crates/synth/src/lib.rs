//! # bugdoc-synth
//!
//! The synthetic pipeline benchmark of the BugDoc evaluation (paper §5.1):
//! a reproducible generator of parameter spaces with planted
//! parameter-comparator-value root causes in the paper's three shapes
//! (single triple, single conjunction, disjunction of conjunctions), plus the
//! exact ground-truth machinery (`R(CP)`, definitive tests, witness
//! sampling) that precision/recall scoring requires.

#![warn(missing_docs)]

mod generator;
pub mod truth;

pub use generator::{CauseScenario, SynthConfig, SyntheticPipeline};
pub use truth::{sample_instance, Truth};
