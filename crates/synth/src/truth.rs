//! Ground-truth machinery for planted failure conditions.
//!
//! The evaluation (paper §5) needs, for every synthetic pipeline, the set
//! `R(CP)` of *actual* minimal definitive root causes to score asserted
//! causes against. This module provides:
//!
//! * the **definitive test** (Def. 4): `cause ⊨ failure-DNF`, decided exactly
//!   over the finite product domain;
//! * a **witness solver** that constructs succeeding (or failing) instances
//!   directly, used to seed experiment histories with both outcomes;
//! * the **ground-truth set**: with planted conjuncts that are pairwise
//!   parameter-disjoint, satisfiable, and non-tautological (the generator's
//!   invariants), every minimal definitive root cause is semantically equal
//!   to one planted conjunct — see the proof sketch in `DESIGN.md` §8 — so
//!   `R(CP)` is simply their canonical forms.

use bugdoc_core::{CanonicalCause, Conjunction, Dnf, Instance, ParamSpace};
use bugdoc_qm::cause_covered_by;
use rand::rngs::StdRng;
use rand::Rng;

/// The planted failure condition of a synthetic pipeline together with its
/// derived ground truth.
#[derive(Debug, Clone)]
pub struct Truth {
    failure: Dnf,
    canon: Vec<CanonicalCause>,
}

impl Truth {
    /// Wraps a planted failure DNF. Unsatisfiable conjuncts are dropped.
    pub fn new(space: &ParamSpace, failure: Dnf) -> Self {
        let canon: Vec<CanonicalCause> = failure
            .conjuncts()
            .iter()
            .map(|c| c.canonicalize(space))
            .filter(|c| !c.is_unsatisfiable())
            .collect();
        Truth { failure, canon }
    }

    /// The planted failure DNF.
    pub fn failure_dnf(&self) -> &Dnf {
        &self.failure
    }

    /// Canonical forms of the planted conjuncts — the ground-truth set
    /// `R(CP)` under the generator's invariants.
    pub fn minimal_causes(&self) -> &[CanonicalCause] {
        &self.canon
    }

    /// Number of ground-truth causes.
    pub fn len(&self) -> usize {
        self.canon.len()
    }

    /// True when nothing was planted.
    pub fn is_empty(&self) -> bool {
        self.canon.is_empty()
    }

    /// Def. 2 for the synthetic pipelines: an instance fails iff it satisfies
    /// the planted DNF.
    pub fn fails(&self, instance: &Instance) -> bool {
        self.failure.satisfied_by(instance)
    }

    /// Def. 4: is `cause` a definitive root cause of this failure condition?
    /// (Every instance satisfying it fails.) Exact, via cube coverage.
    pub fn is_definitive(&self, space: &ParamSpace, cause: &Conjunction) -> bool {
        let canon = cause.canonicalize(space);
        if canon.is_unsatisfiable() {
            return false; // vacuous causes explain nothing
        }
        cause_covered_by(space, &canon, &self.canon)
    }

    /// Is the asserted cause one of the actual minimal definitive root
    /// causes (semantic equality against `R(CP)`)?
    pub fn matches_minimal(&self, space: &ParamSpace, cause: &Conjunction) -> bool {
        let canon = cause.canonicalize(space);
        self.canon.contains(&canon)
    }

    /// Constructs an instance that *succeeds* (violates every planted
    /// conjunct), sampling uniformly among the solver's feasible choices.
    /// `None` when every instance fails.
    pub fn sample_succeeding(&self, space: &ParamSpace, rng: &mut StdRng) -> Option<Instance> {
        // Start unconstrained; for each conjunct pick one constrained
        // parameter and confine the instance to that predicate's complement.
        let mut masks: Vec<Vec<bool>> = space
            .ids()
            .map(|p| vec![true; space.domain(p).len()])
            .collect();
        if !solve_avoid(space, &self.canon, 0, &mut masks, rng) {
            return None;
        }
        Some(sample_from_masks(space, &masks, rng))
    }

    /// Constructs an instance that *fails* by satisfying a uniformly chosen
    /// planted conjunct. `None` when nothing is planted.
    pub fn sample_failing(&self, space: &ParamSpace, rng: &mut StdRng) -> Option<Instance> {
        if self.canon.is_empty() {
            return None;
        }
        self.sample_failing_cause(space, rng.gen_range(0..self.canon.len()), rng)
    }

    /// Constructs an instance that fails by satisfying the planted conjunct
    /// at `idx` — stratified failure sampling (seed histories that witness
    /// *every* cause).
    pub fn sample_failing_cause(
        &self,
        space: &ParamSpace,
        idx: usize,
        rng: &mut StdRng,
    ) -> Option<Instance> {
        if idx >= self.canon.len() {
            return None;
        }
        let pick = &self.canon[idx];
        let masks: Vec<Vec<bool>> = space
            .ids()
            .map(|p| match pick.mask(p) {
                Some(m) => m.to_vec(),
                None => vec![true; space.domain(p).len()],
            })
            .collect();
        Some(sample_from_masks(space, &masks, rng))
    }

    /// Exact fraction of the space that fails, by inclusion–exclusion over
    /// the planted conjuncts (they are few). Used by the generator to reject
    /// degenerate plants.
    pub fn failure_fraction(&self, space: &ParamSpace) -> f64 {
        let k = self.canon.len();
        assert!(k <= 16, "inclusion-exclusion over too many conjuncts");
        let total = space.total_configurations();
        if total == 0 {
            return 0.0;
        }
        let mut covered = 0.0;
        for subset in 1u32..(1 << k) {
            let members: Vec<&CanonicalCause> = (0..k)
                .filter(|i| subset >> i & 1 == 1)
                .map(|i| &self.canon[i])
                .collect();
            let inter = intersection_count(space, &members);
            let sign = if members.len() % 2 == 1 { 1.0 } else { -1.0 };
            covered += sign * inter as f64;
        }
        covered / total as f64
    }
}

/// Constructs an instance that satisfies `require` (if given) while
/// violating every cause in `avoid`. `None` if no such instance exists.
/// Used e.g. to plant anomaly logs of one class that do not accidentally
/// exhibit another class (the DBSherlock scenario, paper §5.3).
pub fn sample_instance(
    space: &ParamSpace,
    require: Option<&CanonicalCause>,
    avoid: &[CanonicalCause],
    rng: &mut StdRng,
) -> Option<Instance> {
    let mut masks: Vec<Vec<bool>> = space
        .ids()
        .map(|p| match require.and_then(|r| r.mask(p)) {
            Some(m) => m.to_vec(),
            None => vec![true; space.domain(p).len()],
        })
        .collect();
    if masks.iter().any(|m| m.iter().all(|&b| !b)) {
        return None;
    }
    if !solve_avoid(space, avoid, 0, &mut masks, rng) {
        return None;
    }
    Some(sample_from_masks(space, &masks, rng))
}

/// Number of instances satisfying *all* the given causes simultaneously.
fn intersection_count(space: &ParamSpace, causes: &[&CanonicalCause]) -> u128 {
    space
        .ids()
        .map(|p| {
            let n = space.domain(p).len();
            (0..n)
                .filter(|&i| causes.iter().all(|c| c.mask(p).map(|m| m[i]).unwrap_or(true)))
                .count() as u128
        })
        .try_fold(1u128, |acc, n| acc.checked_mul(n))
        .unwrap_or(u128::MAX)
}

/// Backtracking solver: confine `masks` so that every conjunct from index
/// `at` onward is violated. Branch choices are shuffled for unbiased
/// sampling.
fn solve_avoid(
    space: &ParamSpace,
    conjuncts: &[CanonicalCause],
    at: usize,
    masks: &mut [Vec<bool>],
    rng: &mut StdRng,
) -> bool {
    let Some(conjunct) = conjuncts.get(at) else {
        return true; // all conjuncts handled
    };
    // Already violated by the current masks? (No remaining value on some
    // parameter can satisfy the conjunct's mask.)
    let already = space.ids().any(|p| {
        conjunct.mask(p).is_some_and(|cm| {
            masks[p.index()]
                .iter()
                .zip(cm.iter())
                .all(|(&alive, &ok)| !(alive && ok))
        })
    });
    if already {
        return solve_avoid(space, conjuncts, at + 1, masks, rng);
    }
    // Choose a constrained parameter and confine to the complement.
    let mut params: Vec<_> = conjunct.masks().keys().copied().collect();
    // Shuffle via Fisher–Yates on indices for sampling diversity.
    for i in (1..params.len()).rev() {
        params.swap(i, rng.gen_range(0..=i));
    }
    for p in params {
        let cm = conjunct.mask(p).expect("constrained parameter");
        let saved = masks[p.index()].clone();
        let mut feasible = false;
        for (slot, (&alive, &ok)) in masks[p.index()]
            .iter_mut()
            .zip(saved.iter().zip(cm.iter()))
            .map(|(slot, pair)| (slot, pair))
        {
            *slot = alive && !ok;
            feasible |= *slot;
        }
        if feasible && solve_avoid(space, conjuncts, at + 1, masks, rng) {
            return true;
        }
        masks[p.index()].copy_from_slice(&saved);
    }
    false
}

fn sample_from_masks(space: &ParamSpace, masks: &[Vec<bool>], rng: &mut StdRng) -> Instance {
    let indices: Vec<u32> = space
        .ids()
        .map(|p| {
            let pool: Vec<u32> = (0..masks[p.index()].len())
                .filter(|&i| masks[p.index()][i])
                .map(|i| i as u32)
                .collect();
            assert!(!pool.is_empty(), "solver produced an empty mask");
            pool[rng.gen_range(0..pool.len())]
        })
        .collect();
    space.instance_from_indices(&indices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bugdoc_core::{Comparator, ParamSpace, Predicate};
    use rand::SeedableRng;
    use std::sync::Arc;

    fn space() -> Arc<ParamSpace> {
        ParamSpace::builder()
            .ordinal("n", [1, 2, 3, 4, 5])
            .categorical("color", ["red", "green", "blue"])
            .ordinal("m", [1, 2, 3, 4])
            .build()
    }

    fn example4_truth(s: &ParamSpace) -> Truth {
        // Paper Example 4 shape: (n = 4) ∨ (m ≤ 2 ∧ color ≠ "blue").
        let n = s.by_name("n").unwrap();
        let m = s.by_name("m").unwrap();
        let color = s.by_name("color").unwrap();
        Truth::new(
            s,
            Dnf::new(vec![
                Conjunction::new(vec![Predicate::eq(n, 4)]),
                Conjunction::new(vec![
                    Predicate::new(m, Comparator::Le, 2),
                    Predicate::new(color, Comparator::Neq, "blue"),
                ]),
            ]),
        )
    }

    #[test]
    fn fails_matches_dnf() {
        let s = space();
        let t = example4_truth(&s);
        let f = Instance::from_pairs(
            &s,
            [("n", 4.into()), ("color", "blue".into()), ("m", 4.into())],
        );
        let g = Instance::from_pairs(
            &s,
            [("n", 1.into()), ("color", "blue".into()), ("m", 1.into())],
        );
        assert!(t.fails(&f));
        assert!(!t.fails(&g));
    }

    #[test]
    fn definitive_test_exact() {
        let s = space();
        let n = s.by_name("n").unwrap();
        let m = s.by_name("m").unwrap();
        let color = s.by_name("color").unwrap();
        let t = example4_truth(&s);
        // The planted conjuncts are definitive.
        assert!(t.is_definitive(&s, &Conjunction::new(vec![Predicate::eq(n, 4)])));
        // A superset of a cause is definitive (but not minimal).
        assert!(t.is_definitive(
            &s,
            &Conjunction::new(vec![Predicate::eq(n, 4), Predicate::eq(m, 1)])
        ));
        // A subset of the conjunction cause is NOT definitive.
        assert!(!t.is_definitive(
            &s,
            &Conjunction::new(vec![Predicate::new(m, Comparator::Le, 2)])
        ));
        // A semantically equal rewrite IS definitive.
        assert!(t.is_definitive(
            &s,
            &Conjunction::new(vec![
                Predicate::new(n, Comparator::Gt, 3),
                Predicate::new(n, Comparator::Le, 4)
            ])
        ));
        // Unrelated causes are not definitive.
        assert!(!t.is_definitive(&s, &Conjunction::new(vec![Predicate::eq(color, "red")])));
    }

    #[test]
    fn matches_minimal_is_semantic() {
        let s = space();
        let n = s.by_name("n").unwrap();
        let t = example4_truth(&s);
        // n=4 expressed as a range matches semantically.
        let rewrite = Conjunction::new(vec![
            Predicate::new(n, Comparator::Gt, 3),
            Predicate::new(n, Comparator::Le, 4),
        ]);
        assert!(t.matches_minimal(&s, &rewrite));
        // A definitive superset is not minimal.
        let m = s.by_name("m").unwrap();
        let superset = Conjunction::new(vec![Predicate::eq(n, 4), Predicate::eq(m, 1)]);
        assert!(!t.matches_minimal(&s, &superset));
    }

    #[test]
    fn sample_succeeding_always_succeeds() {
        let s = space();
        let t = example4_truth(&s);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let inst = t.sample_succeeding(&s, &mut rng).unwrap();
            assert!(!t.fails(&inst), "sampled {}", inst.display(&s));
        }
    }

    #[test]
    fn sample_failing_always_fails() {
        let s = space();
        let t = example4_truth(&s);
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..50 {
            let inst = t.sample_failing(&s, &mut rng).unwrap();
            assert!(t.fails(&inst), "sampled {}", inst.display(&s));
        }
    }

    #[test]
    fn sample_succeeding_none_when_all_fail() {
        let s = space();
        let n = s.by_name("n").unwrap();
        // n ≤ 5 covers everything.
        let t = Truth::new(
            &s,
            Dnf::new(vec![Conjunction::new(vec![Predicate::new(
                n,
                Comparator::Le,
                5,
            )])]),
        );
        let mut rng = StdRng::seed_from_u64(11);
        assert!(t.sample_succeeding(&s, &mut rng).is_none());
    }

    #[test]
    fn failure_fraction_exact() {
        let s = space();
        let t = example4_truth(&s);
        // Brute-force comparison over the 60-instance space.
        let brute = s.instances().filter(|i| t.fails(i)).count() as f64
            / s.total_configurations() as f64;
        assert!((t.failure_fraction(&s) - brute).abs() < 1e-12);
    }

    #[test]
    fn failure_fraction_single_cause() {
        let s = space();
        let n = s.by_name("n").unwrap();
        let t = Truth::new(
            &s,
            Dnf::new(vec![Conjunction::new(vec![Predicate::eq(n, 4)])]),
        );
        assert!((t.failure_fraction(&s) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn unsat_conjuncts_dropped() {
        let s = space();
        let n = s.by_name("n").unwrap();
        let t = Truth::new(
            &s,
            Dnf::new(vec![Conjunction::new(vec![
                Predicate::new(n, Comparator::Le, 1),
                Predicate::new(n, Comparator::Gt, 2),
            ])]),
        );
        assert!(t.is_empty());
        assert_eq!(t.failure_fraction(&s), 0.0);
    }
}

#[cfg(test)]
mod sample_instance_tests {
    use super::*;
    use bugdoc_core::{Comparator, ParamSpace, Predicate};
    use rand::SeedableRng;

    #[test]
    fn satisfies_require_and_violates_avoid() {
        let s = ParamSpace::builder()
            .ordinal("a", [1, 2, 3, 4])
            .ordinal("b", [1, 2, 3, 4])
            .build();
        let a = s.by_name("a").unwrap();
        let b = s.by_name("b").unwrap();
        let require = Conjunction::new(vec![Predicate::new(a, Comparator::Gt, 2)]).canonicalize(&s);
        let avoid = vec![Conjunction::new(vec![Predicate::eq(b, 1)]).canonicalize(&s)];
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..30 {
            let inst = sample_instance(&s, Some(&require), &avoid, &mut rng).unwrap();
            assert!(require.satisfied_by(&inst, &s));
            assert!(!avoid[0].satisfied_by(&inst, &s));
        }
    }

    #[test]
    fn infeasible_combination_returns_none() {
        let s = ParamSpace::builder().ordinal("a", [1, 2]).build();
        let a = s.by_name("a").unwrap();
        let require = Conjunction::new(vec![Predicate::eq(a, 1)]).canonicalize(&s);
        // Avoiding a≤2 is impossible.
        let avoid = vec![Conjunction::new(vec![Predicate::new(a, Comparator::Le, 2)]).canonicalize(&s)];
        let mut rng = StdRng::seed_from_u64(6);
        assert!(sample_instance(&s, Some(&require), &avoid, &mut rng).is_none());
    }
}
