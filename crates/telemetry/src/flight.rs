//! The flight recorder: a fixed-capacity ring of recent structured events.
//!
//! Writers claim a slot with one `fetch_add` and fill it behind a per-slot
//! sequence word (a seqlock): the sequence is odd while the write is in
//! flight and settles to an even value derived from the global index. A
//! reader that observes an odd or changed sequence discards the slot, so a
//! dump is best-effort by construction — it never blocks a writer and a
//! writer never blocks it.
//!
//! This module is a W008 record path: the ring is statically sized
//! ([`FLIGHT_CAPACITY`] slots), overwrites its oldest entry on wrap, and
//! never allocates. Reading slots out into a `Vec` lives in
//! [`crate::registry`], the rendering half.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Ring capacity in events. A power of two so the slot index is a mask,
/// not a division.
pub const FLIGHT_CAPACITY: usize = 1024;

/// What happened. Discriminants are stable wire values (the `FLIGHT`
/// daemon command emits them by name, tests match on them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u64)]
pub enum EventKind {
    /// A serve session was created. args: [session id, 0, 0]
    SessionCreated = 1,
    /// A serve session closed. args: [session id, 0, 0]
    SessionClosed = 2,
    /// A session bound a spec to a shared executor.
    /// args: [session id, executor index, sessions now bound]
    SpecBound = 3,
    /// A diagnosis began. args: [session id or 0 (one-shot), 0, 0]
    DiagnoseStart = 4,
    /// A diagnosis finished.
    /// args: [session id or 0, duration µs, new executions]
    DiagnoseEnd = 5,
    /// A WAL snapshot was written. args: [runs covered, duration µs, 0]
    WalSnapshot = 6,
    /// A WAL replay completed during open.
    /// args: [frames replayed, duration µs, truncated bytes]
    WalReplay = 7,
    /// The shard cache crossed an eviction-pressure sampling threshold.
    /// args: [total evictions, evictions in this insert, 0]
    EvictionPressure = 8,
    /// The bounds gate pruned a subtree. args: [instances short-circuited, 0, 0]
    BoundsPruned = 9,
}

impl EventKind {
    /// The stable name the wire protocol and docs use.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::SessionCreated => "session_created",
            EventKind::SessionClosed => "session_closed",
            EventKind::SpecBound => "spec_bound",
            EventKind::DiagnoseStart => "diagnose_start",
            EventKind::DiagnoseEnd => "diagnose_end",
            EventKind::WalSnapshot => "wal_snapshot",
            EventKind::WalReplay => "wal_replay",
            EventKind::EvictionPressure => "eviction_pressure",
            EventKind::BoundsPruned => "bounds_pruned",
        }
    }

    /// Decodes a stored discriminant; `None` for a torn or zeroed slot.
    pub fn from_code(code: u64) -> Option<EventKind> {
        Some(match code {
            1 => EventKind::SessionCreated,
            2 => EventKind::SessionClosed,
            3 => EventKind::SpecBound,
            4 => EventKind::DiagnoseStart,
            5 => EventKind::DiagnoseEnd,
            6 => EventKind::WalSnapshot,
            7 => EventKind::WalReplay,
            8 => EventKind::EvictionPressure,
            9 => EventKind::BoundsPruned,
            _ => return None,
        })
    }
}

/// One decoded ring entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Global sequence number (0-based, monotone across wraps).
    pub seq: u64,
    /// Microseconds since the recorder's first use in this process.
    pub t_us: u64,
    /// What happened.
    pub kind: EventKind,
    /// Kind-specific payload (see [`EventKind`] docs).
    pub args: [u64; 3],
}

/// One ring slot: a seqlock word plus the event fields.
struct Slot {
    /// Odd while a write is in flight; `2 * (index + 1)` once settled.
    seq: AtomicU64,
    kind: AtomicU64,
    t_us: AtomicU64,
    a0: AtomicU64,
    a1: AtomicU64,
    a2: AtomicU64,
}

impl Slot {
    const fn new() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            t_us: AtomicU64::new(0),
            a0: AtomicU64::new(0),
            a1: AtomicU64::new(0),
            a2: AtomicU64::new(0),
        }
    }
}

/// The fixed-capacity event ring. All storage is inline; recording is
/// wait-free and wraps over the oldest slot.
pub struct FlightRecorder {
    head: AtomicU64,
    slots: [Slot; FLIGHT_CAPACITY],
}

impl FlightRecorder {
    /// A zeroed ring, usable in statics.
    pub const fn new() -> Self {
        // Interior-mutable const item, re-instantiated per slot (the same
        // std idiom Histogram's bucket array uses).
        const EMPTY: Slot = Slot::new();
        FlightRecorder { head: AtomicU64::new(0), slots: [EMPTY; FLIGHT_CAPACITY] }
    }

    /// Records one event. Wait-free: one `fetch_add` to claim a slot, then
    /// plain stores behind the slot's sequence word.
    pub fn record(&self, kind: EventKind, args: [u64; 3]) {
        // Relaxed: the claim only needs uniqueness; publication ordering is
        // provided by the per-slot Release store of the settled sequence.
        let idx = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(idx as usize) & (FLIGHT_CAPACITY - 1)];
        // Odd marker: readers that land mid-write see it and discard.
        // Relaxed is enough for the marker itself — a reader validates by
        // re-reading the sequence after the fields (Acquire below).
        slot.seq.store(idx.wrapping_mul(2).wrapping_add(1), Ordering::Relaxed);
        // Relaxed field stores: ordered against readers by the seq
        // Release/Acquire pair, not individually.
        slot.kind.store(kind as u64, Ordering::Relaxed);
        slot.t_us.store(now_us(), Ordering::Relaxed); // relaxed: as above
        slot.a0.store(args[0], Ordering::Relaxed); // relaxed: as above
        slot.a1.store(args[1], Ordering::Relaxed); // relaxed: as above
        slot.a2.store(args[2], Ordering::Relaxed); // relaxed: as above
        // Settled even value encodes the global index; Release publishes
        // the field stores above to any Acquire reader of this word.
        slot.seq.store(idx.wrapping_add(1).wrapping_mul(2), Ordering::Release);
    }

    /// The next global sequence number (equals the number of events ever
    /// recorded, modulo u64 wrap).
    pub fn cursor(&self) -> u64 {
        // Relaxed: a monotone watermark for sizing a read loop.
        self.head.load(Ordering::Relaxed)
    }

    /// Reads the slot that global index `idx` occupies, validating the
    /// seqlock. `None` when the slot is mid-write, has been overwritten by
    /// a later event, or has never been written.
    pub fn read_slot(&self, idx: u64) -> Option<FlightEvent> {
        let slot = &self.slots[(idx as usize) & (FLIGHT_CAPACITY - 1)];
        let expect = idx.wrapping_add(1).wrapping_mul(2);
        // Acquire pairs with record()'s Release: seeing the settled value
        // guarantees the field stores below are visible.
        if slot.seq.load(Ordering::Acquire) != expect {
            return None;
        }
        // Relaxed field loads: bracketed by the two seq checks.
        let kind = slot.kind.load(Ordering::Relaxed);
        let t_us = slot.t_us.load(Ordering::Relaxed); // relaxed: as above
        let args = [
            slot.a0.load(Ordering::Relaxed), // relaxed: as above
            slot.a1.load(Ordering::Relaxed), // relaxed: as above
            slot.a2.load(Ordering::Relaxed), // relaxed: as above
        ];
        // Re-validate: a writer that wrapped onto this slot mid-read left a
        // different (or odd) sequence — discard the torn read. Acquire
        // keeps this load from sinking above the field loads.
        if slot.seq.load(Ordering::Acquire) != expect {
            return None;
        }
        Some(FlightEvent { seq: idx, t_us, kind: EventKind::from_code(kind)?, args })
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

/// The process-global ring.
static FLIGHT: FlightRecorder = FlightRecorder::new();

/// The process-global ring, for readers ([`crate::registry::flight_dump`]).
pub fn flight() -> &'static FlightRecorder {
    &FLIGHT
}

/// Records one event on the process-global ring.
#[inline]
pub fn event(kind: EventKind, a0: u64, a1: u64, a2: u64) {
    FLIGHT.record(kind, [a0, a1, a2]);
}

/// Microseconds since this process first touched the recorder. Monotonic
/// (`Instant`-backed), saturating far beyond any process lifetime.
pub fn now_us() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let us = EPOCH.get_or_init(Instant::now).elapsed().as_micros();
    if us > u64::MAX as u128 { u64::MAX } else { us as u64 }
}
