//! Wait-free runtime telemetry for the BugDoc workspace.
//!
//! BugDoc's whole premise is explaining opaque computational processes
//! (Lourenço et al., SIGMOD 2020) — this crate applies the same discipline
//! to our own runtime. It provides three primitives and two global
//! facilities:
//!
//! - [`Counter`] / [`Gauge`] — single atomic words.
//! - [`Histogram`] — a log₂-bucketed latency histogram over a fixed
//!   `[AtomicU64; 64]`, recording any `u64` sample with two `fetch_add`s
//!   and one store-free bucket increment. No allocation, no locking, no
//!   branching beyond the bucket computation.
//! - A process-global **registry** ([`counter`], [`gauge`], [`histogram`],
//!   [`render`]) that names metrics once and renders them as Prometheus
//!   text exposition entirely in memory.
//! - A process-global **flight recorder** ([`event`], [`flight_dump`]) — a
//!   fixed-capacity ring of structured events (session lifecycle, diagnosis
//!   phases, WAL snapshots/replays, eviction pressure, bounds-gate
//!   decisions) that overwrites its oldest entry and never reallocates.
//!
//! # The record-path contract (lint rule W008)
//!
//! Everything reachable from a record call — `Counter::add`,
//! `Gauge::set`, `Histogram::record`, `FlightRecorder::record` — is
//! wait-free: no lock acquisition, no allocation, no blocking syscall.
//! The registration/rendering half ([`mod@registry`]) is the only module
//! allowed to lock or allocate, and it is only ever called from scrape
//! and CLI paths. `bugdoc-lint` enforces this split mechanically (W008),
//! the same way W001 pins word-granularity bit loops to the kernel homes.
//!
//! Instrumentation sites cache their metric handle in a `OnceLock` so the
//! registry's `Mutex` is touched once per site, not once per sample:
//!
//! ```
//! use std::sync::OnceLock;
//! fn appends() -> &'static bugdoc_telemetry::Counter {
//!     static C: OnceLock<&'static bugdoc_telemetry::Counter> = OnceLock::new();
//!     C.get_or_init(|| bugdoc_telemetry::counter("demo_appends_total", "demo counter"))
//! }
//! appends().inc();
//! assert!(appends().get() >= 1);
//! ```

pub mod flight;
pub mod metrics;
pub mod registry;

pub use flight::{event, EventKind, FlightEvent, FlightRecorder, FLIGHT_CAPACITY};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{counter, flight_dump, gauge, histogram, render};
