//! The wait-free metric primitives: counters, gauges, and log₂-bucketed
//! histograms.
//!
//! This module is a W008 record path: nothing here may lock, allocate, or
//! block. Snapshots are fixed-size value types so even reading a histogram
//! out for rendering stays allocation-free until the registry formats it.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Instant;

/// Number of histogram buckets: one per power of two of a `u64` sample, so
/// any sample maps to a bucket and the top bucket saturates everything at
/// or above 2⁶³.
pub const BUCKETS: usize = 64;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter, usable in statics.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        // Relaxed: an independent monotone count with no ordering contract
        // against other memory; scrapes tolerate being a few events stale.
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        // Relaxed: same single-word monotone count as above.
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time signed level (bound sessions, queue depth, …).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A zeroed gauge, usable in statics.
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Replaces the level.
    #[inline]
    pub fn set(&self, v: i64) {
        // Relaxed: a single independent word; last write wins is the
        // semantic a level gauge wants.
        self.0.store(v, Ordering::Relaxed);
    }

    /// Moves the level by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        // Relaxed: independent single-word accumulation, read by scrapes.
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> i64 {
        // Relaxed: single-word read of an independent level.
        self.0.load(Ordering::Relaxed)
    }
}

/// A log₂-bucketed histogram over `u64` samples (typically nanoseconds).
///
/// Bucket `i` holds samples whose floor(log₂) is `i`, i.e. the half-open
/// power-of-two range `[2^i, 2^(i+1))`; bucket 0 additionally holds 0.
/// Storage is a fixed `[AtomicU64; 64]` plus running count and sum —
/// recording is three relaxed `fetch_add`s, concurrent recorders never
/// wait on each other, and nothing allocates.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A zeroed histogram, usable in statics.
    pub const fn new() -> Self {
        // An interior-mutable const item is re-instantiated per array slot;
        // this is the std-documented way to build an atomic array.
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// The bucket a sample lands in: floor(log₂(value)), with 0 and 1 both
    /// in bucket 0. Always `< BUCKETS`, so recording cannot panic.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        if value < 2 {
            0
        } else {
            63 - value.leading_zeros() as usize
        }
    }

    /// The inclusive upper bound of bucket `i` (`2^(i+1) - 1`); the top
    /// bucket's bound saturates to `u64::MAX`.
    #[inline]
    pub fn bucket_bound(i: usize) -> u64 {
        if i >= BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << (i + 1)) - 1
        }
    }

    /// Records one sample. Wait-free: three relaxed `fetch_add`s.
    #[inline]
    pub fn record(&self, value: u64) {
        // The mask is redundant with bucket_of's contract but makes the
        // no-panic property local and unconditional.
        let b = Self::bucket_of(value) & (BUCKETS - 1);
        // Relaxed on all three: each word is an independent statistical
        // accumulator; a scrape racing a record may see the bucket without
        // the count (or vice versa), which snapshot consumers tolerate.
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed); // relaxed: as above
        self.sum.fetch_add(value, Ordering::Relaxed); // relaxed: as above
    }

    /// Records the nanoseconds elapsed since `start`, saturating at
    /// `u64::MAX` (584 years — effectively never).
    #[inline]
    pub fn record_elapsed(&self, start: Instant) {
        let ns = start.elapsed().as_nanos();
        self.record(if ns > u64::MAX as u128 { u64::MAX } else { ns as u64 });
    }

    /// A point-in-time copy of the histogram. Concurrent recorders may
    /// leave `count` momentarily out of step with the bucket total; once
    /// recorders quiesce the snapshot is exact.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(self.buckets.iter()) {
            // Relaxed: statistical read, same contract as record().
            *dst = src.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            // Relaxed: statistical read of independent accumulator words.
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A plain-value copy of a [`Histogram`], mergeable across instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (bucket `i` covers `[2^i, 2^(i+1))`).
    pub buckets: [u64; BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all sample values.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { buckets: [0; BUCKETS], count: 0, sum: 0 }
    }
}

impl HistogramSnapshot {
    /// Accumulates `other` into `self` (saturating, so merging can never
    /// wrap even on adversarial inputs).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst = dst.saturating_add(*src);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Sum of the per-bucket counts — equals `count` once recorders
    /// quiesce.
    pub fn bucket_total(&self) -> u64 {
        self.buckets.iter().fold(0u64, |acc, b| acc.saturating_add(*b))
    }
}
