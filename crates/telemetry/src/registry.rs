//! The registration and rendering half of the telemetry crate.
//!
//! This is the only module allowed to lock or allocate (W008 scopes the
//! wait-free contract to [`crate::metrics`] and [`crate::flight`]).
//! Registration takes a `Mutex` once per *site* — instrumentation points
//! cache the returned `&'static` handle in a `OnceLock` — and rendering
//! runs only on scrape/CLI paths, entirely in memory.

use std::fmt::Write as _;
use std::sync::{Mutex, OnceLock};

use crate::flight::{flight, FlightEvent, FLIGHT_CAPACITY};
use crate::metrics::{Counter, Gauge, Histogram, BUCKETS};

/// What a registered name refers to.
enum Handle {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

struct Entry {
    name: &'static str,
    help: &'static str,
    handle: Handle,
}

/// The process-global registry: a locked list, touched only at
/// registration and render time.
static REGISTRY: OnceLock<Mutex<Vec<Entry>>> = OnceLock::new();

fn registry() -> &'static Mutex<Vec<Entry>> {
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Registers (or finds) a counter named `name`. Idempotent: a second call
/// with the same name returns the same handle, so call sites don't need to
/// coordinate. The handle is `&'static` (leaked once) so record paths
/// never touch the registry lock.
pub fn counter(name: &'static str, help: &'static str) -> &'static Counter {
    let mut entries = lock_entries();
    for e in entries.iter() {
        if e.name == name {
            if let Handle::Counter(c) = e.handle {
                return c;
            }
        }
    }
    let c: &'static Counter = Box::leak(Box::new(Counter::new()));
    entries.push(Entry { name, help, handle: Handle::Counter(c) });
    c
}

/// Registers (or finds) a gauge named `name` (see [`counter`]).
pub fn gauge(name: &'static str, help: &'static str) -> &'static Gauge {
    let mut entries = lock_entries();
    for e in entries.iter() {
        if e.name == name {
            if let Handle::Gauge(g) = e.handle {
                return g;
            }
        }
    }
    let g: &'static Gauge = Box::leak(Box::new(Gauge::new()));
    entries.push(Entry { name, help, handle: Handle::Gauge(g) });
    g
}

/// Registers (or finds) a histogram named `name` (see [`counter`]).
pub fn histogram(name: &'static str, help: &'static str) -> &'static Histogram {
    let mut entries = lock_entries();
    for e in entries.iter() {
        if e.name == name {
            if let Handle::Histogram(h) = e.handle {
                return h;
            }
        }
    }
    let h: &'static Histogram = Box::leak(Box::new(Histogram::new()));
    entries.push(Entry { name, help, handle: Handle::Histogram(h) });
    h
}

fn lock_entries() -> std::sync::MutexGuard<'static, Vec<Entry>> {
    // A poisoned registry lock only means a panic happened mid-registration
    // elsewhere; the list itself is append-only and safe to keep using.
    match registry().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Renders every registered metric as Prometheus text exposition
/// (`# HELP` / `# TYPE` headers, then samples), sorted by name so scrapes
/// are diffable. Histograms emit cumulative `_bucket{le="…"}` series up to
/// their highest occupied bucket, then `{le="+Inf"}`, `_sum`, and
/// `_count`; sample values are whatever unit the recorder used
/// (nanoseconds for the built-in latency probes).
pub fn render() -> String {
    let entries = lock_entries();
    let mut order: Vec<usize> = (0..entries.len()).collect();
    order.sort_by_key(|&i| entries[i].name);
    let mut out = String::new();
    for i in order {
        let e = &entries[i];
        match e.handle {
            Handle::Counter(c) => {
                let _ = writeln!(out, "# HELP {} {}", e.name, e.help);
                let _ = writeln!(out, "# TYPE {} counter", e.name);
                let _ = writeln!(out, "{} {}", e.name, c.get());
            }
            Handle::Gauge(g) => {
                let _ = writeln!(out, "# HELP {} {}", e.name, e.help);
                let _ = writeln!(out, "# TYPE {} gauge", e.name);
                let _ = writeln!(out, "{} {}", e.name, g.get());
            }
            Handle::Histogram(h) => {
                let snap = h.snapshot();
                let _ = writeln!(out, "# HELP {} {}", e.name, e.help);
                let _ = writeln!(out, "# TYPE {} histogram", e.name);
                let top = snap
                    .buckets
                    .iter()
                    .rposition(|&b| b != 0)
                    .map(|p| p + 1)
                    .unwrap_or(0)
                    .min(BUCKETS);
                let mut cumulative = 0u64;
                for (b, &n) in snap.buckets.iter().enumerate().take(top) {
                    cumulative = cumulative.saturating_add(n);
                    let _ = writeln!(
                        out,
                        "{}_bucket{{le=\"{}\"}} {}",
                        e.name,
                        Histogram::bucket_bound(b),
                        cumulative
                    );
                }
                let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", e.name, snap.bucket_total());
                let _ = writeln!(out, "{}_sum {}", e.name, snap.sum);
                let _ = writeln!(out, "{}_count {}", e.name, snap.count);
            }
        }
    }
    out
}

/// Dumps the most recent flight events, oldest first, at most `max` (and
/// never more than the ring holds). Torn or overwritten slots are skipped,
/// so under heavy concurrent recording the dump may have gaps — by design,
/// the reader never blocks a writer.
pub fn flight_dump(max: usize) -> Vec<FlightEvent> {
    let ring = flight();
    let cursor = ring.cursor();
    let span = (max.min(FLIGHT_CAPACITY) as u64).min(cursor);
    let mut out = Vec::with_capacity(span as usize);
    let mut idx = cursor - span;
    while idx < cursor {
        if let Some(ev) = ring.read_slot(idx) {
            out.push(ev);
        }
        idx += 1;
    }
    out
}
