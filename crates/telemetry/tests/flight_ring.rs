//! Flight-recorder ring semantics: wraparound overwrites the oldest entry,
//! reads validate the seqlock, and the global dump returns recent events
//! oldest-first.

use bugdoc_telemetry::{event, flight_dump, EventKind, FlightRecorder, FLIGHT_CAPACITY};

#[test]
fn wraparound_overwrites_oldest() {
    let ring = Box::new(FlightRecorder::new());
    let total = FLIGHT_CAPACITY as u64 + 100;
    for i in 0..total {
        ring.record(EventKind::DiagnoseEnd, [i, i * 2, i * 3]);
    }
    assert_eq!(ring.cursor(), total);
    // The first 100 global indices have been overwritten by the wrap.
    for i in 0..100 {
        assert!(ring.read_slot(i).is_none(), "index {i} should be overwritten");
    }
    // Everything still resident reads back exactly.
    for i in 100..total {
        let ev = ring.read_slot(i).unwrap_or_else(|| panic!("index {i} missing"));
        assert_eq!(ev.seq, i);
        assert_eq!(ev.kind, EventKind::DiagnoseEnd);
        assert_eq!(ev.args, [i, i * 2, i * 3]);
    }
}

#[test]
fn capacity_is_fixed() {
    // The ring is inline storage: recording far past capacity never grows
    // it — cursor advances, resident window stays at FLIGHT_CAPACITY.
    let ring = Box::new(FlightRecorder::new());
    for round in 0..3u64 {
        for i in 0..FLIGHT_CAPACITY as u64 {
            ring.record(EventKind::EvictionPressure, [round, i, 0]);
        }
        let cursor = ring.cursor();
        let resident = (0..cursor).filter(|&i| ring.read_slot(i).is_some()).count();
        assert_eq!(resident, FLIGHT_CAPACITY);
    }
}

#[test]
fn unwritten_slots_read_none() {
    let ring = Box::new(FlightRecorder::new());
    assert!(ring.read_slot(0).is_none());
    ring.record(EventKind::WalSnapshot, [7, 8, 9]);
    assert!(ring.read_slot(0).is_some());
    assert!(ring.read_slot(1).is_none());
}

#[test]
fn global_dump_returns_recent_events_oldest_first() {
    event(EventKind::SessionCreated, 41, 0, 0);
    event(EventKind::SpecBound, 41, 3, 1);
    event(EventKind::SessionClosed, 41, 0, 0);
    let dump = flight_dump(FLIGHT_CAPACITY);
    assert!(dump.len() >= 3);
    // Oldest-first ordering and our three events at the tail.
    for pair in dump.windows(2) {
        assert!(pair[0].seq < pair[1].seq);
    }
    let tail: Vec<_> = dump.iter().rev().take(3).rev().map(|e| (e.kind, e.args[0])).collect();
    assert_eq!(
        tail,
        vec![
            (EventKind::SessionCreated, 41),
            (EventKind::SpecBound, 41),
            (EventKind::SessionClosed, 41),
        ]
    );
}

#[test]
fn kind_codes_round_trip() {
    for kind in [
        EventKind::SessionCreated,
        EventKind::SessionClosed,
        EventKind::SpecBound,
        EventKind::DiagnoseStart,
        EventKind::DiagnoseEnd,
        EventKind::WalSnapshot,
        EventKind::WalReplay,
        EventKind::EvictionPressure,
        EventKind::BoundsPruned,
    ] {
        assert_eq!(EventKind::from_code(kind as u64), Some(kind));
        assert!(!kind.name().is_empty());
    }
    assert_eq!(EventKind::from_code(0), None);
    assert_eq!(EventKind::from_code(999), None);
}
