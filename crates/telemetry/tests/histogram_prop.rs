//! Property tests for the log₂ histogram against a naive reference, plus
//! concurrency and merge consistency checks.

use bugdoc_telemetry::{Histogram, HistogramSnapshot, BUCKETS};
use proptest::prelude::*;
use std::sync::Arc;

/// The reference bucketing: scan the power-of-two ranges directly.
fn reference_bucket(value: u64) -> usize {
    if value < 2 {
        return 0;
    }
    for i in 1..BUCKETS {
        let lo = 1u64 << i;
        if value >= lo && (i == BUCKETS - 1 || value < lo << 1) {
            return i;
        }
    }
    BUCKETS - 1
}

/// A reference histogram built with plain integers.
fn reference(samples: &[u64]) -> HistogramSnapshot {
    let mut snap = HistogramSnapshot::default();
    for &s in samples {
        snap.buckets[reference_bucket(s)] += 1;
        snap.count += 1;
        snap.sum = snap.sum.wrapping_add(s);
    }
    snap
}

#[test]
fn bucket_boundaries_are_powers_of_two() {
    // 0 and 1 share bucket 0; every 2^i opens bucket i; 2^(i+1)-1 closes it.
    assert_eq!(Histogram::bucket_of(0), 0);
    assert_eq!(Histogram::bucket_of(1), 0);
    for i in 1..BUCKETS {
        let lo = 1u64 << i;
        assert_eq!(Histogram::bucket_of(lo), i, "2^{i} opens bucket {i}");
        assert_eq!(Histogram::bucket_of(lo - 1), i - 1, "2^{i}-1 closes bucket {}", i - 1);
    }
}

#[test]
fn top_bucket_saturates() {
    assert_eq!(Histogram::bucket_of(u64::MAX), BUCKETS - 1);
    assert_eq!(Histogram::bucket_of(1u64 << 63), BUCKETS - 1);
    assert_eq!(Histogram::bucket_bound(BUCKETS - 1), u64::MAX);
    let h = Histogram::new();
    h.record(u64::MAX);
    h.record(1u64 << 63);
    assert_eq!(h.snapshot().buckets[BUCKETS - 1], 2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matches_reference(samples in proptest::collection::vec(any::<u64>(), 0..200)) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let snap = h.snapshot();
        let reference = reference(&samples);
        prop_assert_eq!(snap.buckets, reference.buckets);
        prop_assert_eq!(snap.count, reference.count);
        prop_assert_eq!(snap.count, snap.bucket_total());
    }

    #[test]
    fn merge_matches_combined(
        a in proptest::collection::vec(any::<u64>(), 0..100),
        b in proptest::collection::vec(any::<u64>(), 0..100),
    ) {
        let ha = Histogram::new();
        let hb = Histogram::new();
        for &s in &a {
            ha.record(s);
        }
        for &s in &b {
            hb.record(s);
        }
        let mut merged = ha.snapshot();
        merged.merge(&hb.snapshot());
        let combined: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        let reference = reference(&combined);
        prop_assert_eq!(merged.buckets, reference.buckets);
        prop_assert_eq!(merged.count, reference.count);
    }
}

/// Concurrent recorders: every thread hammers the same histogram; once all
/// join, the snapshot is exact (no lost updates, count == bucket total).
#[test]
fn concurrent_recorders_lose_nothing() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 10_000;
    let h = Arc::new(Histogram::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    // Spread samples across buckets deterministically.
                    h.record(((t * PER_THREAD + i) as u64) << (i % 24));
                }
            })
        })
        .collect();
    // Snapshots taken mid-flight must stay internally plausible (never
    // more buckets than records claimed by a later snapshot).
    let mid = h.snapshot();
    assert!(mid.bucket_total() <= (THREADS * PER_THREAD) as u64);
    for handle in handles {
        handle.join().unwrap();
    }
    let snap = h.snapshot();
    assert_eq!(snap.count, (THREADS * PER_THREAD) as u64);
    assert_eq!(snap.count, snap.bucket_total());
}
