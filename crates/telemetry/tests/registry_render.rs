//! Registry exposition-format tests: idempotent registration and valid
//! Prometheus text rendering.

use bugdoc_telemetry::{counter, gauge, histogram, render};

#[test]
fn registration_is_idempotent() {
    let a = counter("reg_test_idem_total", "idempotency check");
    let b = counter("reg_test_idem_total", "idempotency check");
    assert!(std::ptr::eq(a, b));
    a.inc();
    assert_eq!(b.get(), 1);
}

#[test]
fn render_emits_valid_exposition_triples() {
    counter("reg_test_render_total", "a counter").add(3);
    gauge("reg_test_render_level", "a gauge").set(-2);
    let h = histogram("reg_test_render_ns", "a histogram");
    h.record(5);
    h.record(300);
    let text = render();

    // Every non-comment line is `name[{labels}] value`; every family has
    // # HELP and # TYPE headers preceding its samples.
    let mut seen_type: Vec<&str> = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().unwrap();
            let kind = parts.next().unwrap();
            assert!(matches!(kind, "counter" | "gauge" | "histogram"), "bad type {kind}");
            seen_type.push(name);
        } else if !line.starts_with('#') && !line.is_empty() {
            let (series, value) = line.rsplit_once(' ').expect("sample line has a value");
            let name = series.split('{').next().unwrap();
            assert!(
                seen_type.iter().any(|t| name.starts_with(t)),
                "sample {name} before its # TYPE header"
            );
            value.parse::<f64>().unwrap_or_else(|_| panic!("unparsable value {value:?}"));
        }
    }

    assert!(text.contains("# TYPE reg_test_render_total counter"));
    assert!(text.contains("reg_test_render_total 3"));
    assert!(text.contains("# TYPE reg_test_render_level gauge"));
    assert!(text.contains("reg_test_render_level -2"));
    assert!(text.contains("# TYPE reg_test_render_ns histogram"));
    // 5 lands in bucket 2 (le=7), 300 in bucket 8 (le=511); cumulative
    // buckets, then +Inf, sum, count.
    assert!(text.contains("reg_test_render_ns_bucket{le=\"7\"} 1"));
    assert!(text.contains("reg_test_render_ns_bucket{le=\"511\"} 2"));
    assert!(text.contains("reg_test_render_ns_bucket{le=\"+Inf\"} 2"));
    assert!(text.contains("reg_test_render_ns_sum 305"));
    assert!(text.contains("reg_test_render_ns_count 2"));
}
