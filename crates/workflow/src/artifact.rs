//! Artifacts: the values modules pass along workflow edges.
//!
//! The paper's pipelines move datasets, trained models, and scores between
//! modules ("reads a dataset, splits it into training and test subsets,
//! creates and executes an estimator, and computes the F-measure score",
//! §1). [`Artifact`] covers those shapes with a tiny numeric
//! [`Frame`] standing in for tabular data.

use std::fmt;
use std::sync::Arc;

/// A tiny numeric table: named feature columns plus an integer label per
/// row — enough to carry classification datasets between modules.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    columns: Vec<String>,
    /// Feature rows (row-major; every row has `columns.len()` features).
    rows: Vec<Vec<f64>>,
    /// One class label per row.
    labels: Vec<i64>,
}

impl Frame {
    /// Creates a frame; all rows must match the column count and the label
    /// count must match the row count.
    pub fn new(
        columns: Vec<String>,
        rows: Vec<Vec<f64>>,
        labels: Vec<i64>,
    ) -> Self {
        assert_eq!(rows.len(), labels.len(), "one label per row");
        for row in &rows {
            assert_eq!(row.len(), columns.len(), "row arity matches columns");
        }
        Frame {
            columns,
            rows,
            labels,
        }
    }

    /// Column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the frame has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of feature columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// A feature row.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.rows[i]
    }

    /// A row's label.
    pub fn label(&self, i: usize) -> i64 {
        self.labels[i]
    }

    /// Distinct labels, ascending.
    pub fn classes(&self) -> Vec<i64> {
        let mut classes: Vec<i64> = self.labels.clone();
        classes.sort_unstable();
        classes.dedup();
        classes
    }

    /// A new frame containing the given row indices.
    pub fn select(&self, indices: &[usize]) -> Frame {
        Frame {
            columns: self.columns.clone(),
            rows: indices.iter().map(|&i| self.rows[i].clone()).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
        }
    }

    /// Deterministic *stratified* k-fold split: fold `k` of `n_folds` as
    /// `(train, test)`. Rows are striped round-robin **within each class**,
    /// so every fold sees every class — naive `i % n_folds` striping
    /// resonates with interleaved class layouts and can put an entire class
    /// into one test fold.
    pub fn fold(&self, k: usize, n_folds: usize) -> (Frame, Frame) {
        assert!(n_folds >= 2 && k < n_folds);
        let mut per_class_counter: std::collections::HashMap<i64, usize> =
            std::collections::HashMap::new();
        let mut train = Vec::new();
        let mut test = Vec::new();
        for i in 0..self.len() {
            let counter = per_class_counter.entry(self.labels[i]).or_insert(0);
            if *counter % n_folds == k {
                test.push(i);
            } else {
                train.push(i);
            }
            *counter += 1;
        }
        (self.select(&train), self.select(&test))
    }

    /// Applies a function to every feature value, returning a new frame.
    pub fn map_features(&self, f: impl Fn(f64) -> f64) -> Frame {
        Frame {
            columns: self.columns.clone(),
            rows: self
                .rows
                .iter()
                .map(|r| r.iter().map(|&x| f(x)).collect())
                .collect(),
            labels: self.labels.clone(),
        }
    }

    /// Per-column mean and standard deviation (population).
    pub fn column_stats(&self) -> Vec<(f64, f64)> {
        (0..self.width())
            .map(|c| {
                let n = self.len().max(1) as f64;
                let mean = self.rows.iter().map(|r| r[c]).sum::<f64>() / n;
                let var = self.rows.iter().map(|r| (r[c] - mean).powi(2)).sum::<f64>() / n;
                (mean, var.sqrt())
            })
            .collect()
    }
}

/// A value flowing along a workflow edge.
#[derive(Debug, Clone)]
pub enum Artifact {
    /// No payload (side-effect-only modules).
    Empty,
    /// A scalar (a score, a count).
    Number(f64),
    /// A label or message.
    Text(String),
    /// A dataset.
    Frame(Arc<Frame>),
    /// A pair of datasets (e.g. train/test).
    FramePair(Arc<Frame>, Arc<Frame>),
}

impl Artifact {
    /// The scalar payload, if this is a number.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Artifact::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The dataset payload, if this is a frame.
    pub fn as_frame(&self) -> Option<&Arc<Frame>> {
        match self {
            Artifact::Frame(f) => Some(f),
            _ => None,
        }
    }

    /// The dataset pair, if present.
    pub fn as_frame_pair(&self) -> Option<(&Arc<Frame>, &Arc<Frame>)> {
        match self {
            Artifact::FramePair(a, b) => Some((a, b)),
            _ => None,
        }
    }
}

impl fmt::Display for Artifact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Artifact::Empty => write!(f, "∅"),
            Artifact::Number(x) => write!(f, "{x}"),
            Artifact::Text(s) => write!(f, "{s}"),
            Artifact::Frame(frame) => write!(f, "frame[{}×{}]", frame.len(), frame.width()),
            Artifact::FramePair(a, b) => {
                write!(f, "frames[{}+{}]", a.len(), b.len())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Frame {
        Frame::new(
            vec!["x".into(), "y".into()],
            vec![
                vec![1.0, 10.0],
                vec![2.0, 20.0],
                vec![3.0, 30.0],
                vec![4.0, 40.0],
            ],
            vec![0, 1, 0, 1],
        )
    }

    #[test]
    fn construction_and_access() {
        let f = toy();
        assert_eq!(f.len(), 4);
        assert_eq!(f.width(), 2);
        assert_eq!(f.row(1), &[2.0, 20.0]);
        assert_eq!(f.label(3), 1);
        assert_eq!(f.classes(), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "one label per row")]
    fn label_arity_checked() {
        Frame::new(vec!["x".into()], vec![vec![1.0]], vec![]);
    }

    #[test]
    fn fold_partitions_rows() {
        let f = toy();
        let (train, test) = f.fold(0, 2);
        assert_eq!(train.len() + test.len(), f.len());
        assert_eq!(test.len(), 2);
        // Fold 0 of 2 takes even indices.
        assert_eq!(test.row(0), &[1.0, 10.0]);
        // All folds cover all rows exactly once.
        let mut seen = 0;
        for k in 0..2 {
            seen += f.fold(k, 2).1.len();
        }
        assert_eq!(seen, f.len());
    }

    #[test]
    fn map_and_stats() {
        let f = toy().map_features(|x| x * 2.0);
        assert_eq!(f.row(0), &[2.0, 20.0]);
        let stats = toy().column_stats();
        assert!((stats[0].0 - 2.5).abs() < 1e-12);
        assert!(stats[0].1 > 0.0);
    }

    #[test]
    fn artifact_accessors_and_display() {
        assert_eq!(Artifact::Number(0.5).as_number(), Some(0.5));
        assert!(Artifact::Empty.as_number().is_none());
        let frame = Arc::new(toy());
        let a = Artifact::Frame(frame.clone());
        assert_eq!(a.as_frame().unwrap().len(), 4);
        assert_eq!(a.to_string(), "frame[4×2]");
        let pair = Artifact::FramePair(frame.clone(), frame);
        assert!(pair.as_frame_pair().is_some());
        assert_eq!(Artifact::Empty.to_string(), "∅");
    }
}
