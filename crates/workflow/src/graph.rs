//! The workflow graph: a DAG of parameterized modules with swappable
//! implementations, compiled into a BugDoc-debuggable [`Pipeline`].
//!
//! This is the paper's pipeline model made concrete (§3, Def. 1): the
//! manipulable parameters of a computational pipeline include
//! "hyperparameters, input data, versions of programs, computational
//! modules". Here:
//!
//! * a **module** consumes the artifacts of its dependencies and produces an
//!   artifact;
//! * a module may declare **parameters** (hyperparameters it reads);
//! * a module may have **alternative implementations** (the Figure-1
//!   `Estimator` box) — the choice becomes a categorical parameter;
//! * the final module's numeric artifact is thresholded by the workflow's
//!   **evaluation procedure** (Def. 2).
//!
//! Compiling the graph yields a [`WorkflowPipeline`] whose parameter space
//! is exactly the union of all module parameters plus one choice parameter
//! per multi-implementation module — so BugDoc debugs module selection,
//! versions, and hyperparameters uniformly, as the paper intends.

use crate::artifact::Artifact;
use bugdoc_core::{EvalResult, Instance, ParamSpace, Value};
use bugdoc_engine::{Pipeline, PipelineError, SimTime};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// What a module implementation sees when it runs: its declared parameters
/// (resolved from the instance) and its dependencies' artifacts.
pub struct ModuleCtx<'a> {
    params: HashMap<&'a str, &'a Value>,
    inputs: &'a [Artifact],
}

impl ModuleCtx<'_> {
    /// The value of a declared parameter. Panics on undeclared names — a
    /// module reading a parameter it never declared is a wiring bug.
    pub fn param(&self, name: &str) -> &Value {
        self.params
            .get(name)
            .unwrap_or_else(|| panic!("module did not declare parameter {name:?}"))
    }

    /// The parameter as f64 (for numeric hyperparameters).
    pub fn param_f64(&self, name: &str) -> f64 {
        self.param(name)
            .as_f64()
            .unwrap_or_else(|| panic!("parameter {name:?} is not numeric"))
    }

    /// The i-th dependency's artifact.
    pub fn input(&self, i: usize) -> &Artifact {
        &self.inputs[i]
    }

    /// All dependency artifacts, in declaration order.
    pub fn inputs(&self) -> &[Artifact] {
        self.inputs
    }
}

/// A module run failure: the instance evaluates to `fail` (crash semantics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleError {
    /// Human-readable crash description.
    pub message: String,
}

impl ModuleError {
    /// Creates a module error.
    pub fn new(message: impl Into<String>) -> Self {
        ModuleError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ModuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "module error: {}", self.message)
    }
}

type ModuleFn = Arc<dyn Fn(&ModuleCtx) -> Result<Artifact, ModuleError> + Send + Sync>;

/// One implementation of a module.
pub struct Implementation {
    name: String,
    run: ModuleFn,
}

impl Implementation {
    /// Creates a named implementation.
    pub fn new(
        name: impl Into<String>,
        run: impl Fn(&ModuleCtx) -> Result<Artifact, ModuleError> + Send + Sync + 'static,
    ) -> Self {
        Implementation {
            name: name.into(),
            run: Arc::new(run),
        }
    }
}

/// A parameter a module declares: name + domain values + kind.
pub struct ParamDecl {
    name: String,
    values: Vec<Value>,
    ordinal: bool,
}

impl ParamDecl {
    /// An ordinal (ordered) parameter.
    pub fn ordinal(name: impl Into<String>, values: impl IntoIterator<Item = impl Into<Value>>) -> Self {
        ParamDecl {
            name: name.into(),
            values: values.into_iter().map(Into::into).collect(),
            ordinal: true,
        }
    }

    /// A categorical parameter.
    pub fn categorical(
        name: impl Into<String>,
        values: impl IntoIterator<Item = impl Into<Value>>,
    ) -> Self {
        ParamDecl {
            name: name.into(),
            values: values.into_iter().map(Into::into).collect(),
            ordinal: false,
        }
    }
}

struct ModuleDef {
    name: String,
    deps: Vec<usize>,
    params: Vec<ParamDecl>,
    implementations: Vec<Implementation>,
}

/// Fluent builder for workflow graphs.
pub struct WorkflowBuilder {
    name: String,
    modules: Vec<ModuleDef>,
    by_name: HashMap<String, usize>,
}

/// Handle to a module added to the builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModuleId(usize);

impl WorkflowBuilder {
    /// Starts a workflow.
    pub fn new(name: impl Into<String>) -> Self {
        WorkflowBuilder {
            name: name.into(),
            modules: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// Adds a module with a single implementation.
    pub fn module(
        &mut self,
        name: impl Into<String>,
        deps: &[ModuleId],
        params: Vec<ParamDecl>,
        run: impl Fn(&ModuleCtx) -> Result<Artifact, ModuleError> + Send + Sync + 'static,
    ) -> ModuleId {
        let name = name.into();
        self.add(
            name.clone(),
            deps,
            params,
            vec![Implementation::new(name, run)],
        )
    }

    /// Adds a module with alternative implementations; the selection becomes
    /// a categorical parameter named `<module>.impl` (the Figure-1
    /// `Estimator` pattern).
    pub fn choice_module(
        &mut self,
        name: impl Into<String>,
        deps: &[ModuleId],
        params: Vec<ParamDecl>,
        implementations: Vec<Implementation>,
    ) -> ModuleId {
        assert!(
            implementations.len() >= 2,
            "choice module needs at least two implementations"
        );
        self.add(name.into(), deps, params, implementations)
    }

    fn add(
        &mut self,
        name: String,
        deps: &[ModuleId],
        params: Vec<ParamDecl>,
        implementations: Vec<Implementation>,
    ) -> ModuleId {
        assert!(
            !self.by_name.contains_key(&name),
            "duplicate module name {name:?}"
        );
        for dep in deps {
            assert!(dep.0 < self.modules.len(), "dependency added before use");
        }
        assert!(!implementations.is_empty(), "module needs an implementation");
        let id = self.modules.len();
        self.by_name.insert(name.clone(), id);
        self.modules.push(ModuleDef {
            name,
            deps: deps.iter().map(|d| d.0).collect(),
            params,
            implementations,
        });
        ModuleId(id)
    }

    /// Compiles the graph: `sink` is the module whose numeric artifact the
    /// evaluation thresholds; `succeed_if` maps that number to the binary
    /// outcome. A crash (any [`ModuleError`]) evaluates to `fail`.
    pub fn build(
        self,
        sink: ModuleId,
        succeed_if: impl Fn(f64) -> bool + Send + Sync + 'static,
    ) -> WorkflowPipeline {
        assert!(sink.0 < self.modules.len());
        // Compile the parameter space: module params (qualified by module
        // name when ambiguous... keep simple: require global uniqueness),
        // plus one choice param per multi-implementation module.
        let mut builder = ParamSpace::builder();
        let mut bindings: Vec<CompiledModule> = Vec::new();
        let mut param_names: Vec<String> = Vec::new();

        for def in &self.modules {
            let mut local_params = Vec::new();
            for decl in &def.params {
                assert!(
                    !param_names.contains(&decl.name),
                    "parameter name {:?} is used by two modules; qualify it",
                    decl.name
                );
                param_names.push(decl.name.clone());
                builder = if decl.ordinal {
                    builder.ordinal(decl.name.clone(), decl.values.clone())
                } else {
                    builder.categorical(decl.name.clone(), decl.values.clone())
                };
                local_params.push(decl.name.clone());
            }
            let choice_param = if def.implementations.len() > 1 {
                let pname = format!("{}.impl", def.name);
                assert!(!param_names.contains(&pname));
                param_names.push(pname.clone());
                builder = builder.categorical(
                    pname.clone(),
                    def.implementations
                        .iter()
                        .map(|i| Value::str(&i.name))
                        .collect::<Vec<_>>(),
                );
                Some(pname)
            } else {
                None
            };
            bindings.push(CompiledModule {
                deps: def.deps.clone(),
                local_params,
                choice_param,
                implementations: def
                    .implementations
                    .iter()
                    .map(|i| (i.name.clone(), i.run.clone()))
                    .collect(),
            });
        }

        WorkflowPipeline {
            space: builder.build(),
            modules: bindings,
            sink: sink.0,
            succeed_if: Arc::new(succeed_if),
            name: self.name,
            cost: SimTime::from_secs(60.0),
        }
    }
}

struct CompiledModule {
    deps: Vec<usize>,
    local_params: Vec<String>,
    choice_param: Option<String>,
    implementations: Vec<(String, ModuleFn)>,
}

/// A compiled workflow: a [`Pipeline`] whose execution runs the module DAG.
pub struct WorkflowPipeline {
    space: Arc<ParamSpace>,
    modules: Vec<CompiledModule>,
    sink: usize,
    succeed_if: Arc<dyn Fn(f64) -> bool + Send + Sync>,
    name: String,
    cost: SimTime,
}

impl WorkflowPipeline {
    /// Overrides the simulated per-instance cost (default 60 s).
    pub fn with_cost(mut self, cost: SimTime) -> Self {
        self.cost = cost;
        self
    }

    /// Runs the DAG for an instance, returning the sink module's artifact
    /// (for tests and callers that need the raw result).
    pub fn run_dag(&self, instance: &Instance) -> Result<Artifact, ModuleError> {
        let mut artifacts: Vec<Option<Artifact>> = (0..self.modules.len()).map(|_| None).collect();
        // Modules are stored in dependency order by construction (deps must
        // exist before use), so a single left-to-right pass suffices.
        for (i, module) in self.modules.iter().enumerate() {
            let inputs: Vec<Artifact> = module
                .deps
                .iter()
                .map(|&d| artifacts[d].clone().expect("deps run before dependents"))
                .collect();
            let mut params: HashMap<&str, &Value> = HashMap::new();
            for pname in &module.local_params {
                let pid = self.space.by_name(pname).expect("compiled parameter");
                params.insert(pname.as_str(), instance.get(pid));
            }
            let run = match &module.choice_param {
                None => &module.implementations[0].1,
                Some(pname) => {
                    let pid = self.space.by_name(pname).expect("compiled choice");
                    let chosen = instance.get(pid).to_string();
                    &module
                        .implementations
                        .iter()
                        .find(|(n, _)| *n == chosen)
                        .expect("choice value names an implementation")
                        .1
                }
            };
            let ctx = ModuleCtx {
                params,
                inputs: &inputs,
            };
            artifacts[i] = Some(run(&ctx)?);
        }
        Ok(artifacts[self.sink].clone().expect("sink executed"))
    }
}

impl Pipeline for WorkflowPipeline {
    fn space(&self) -> &Arc<ParamSpace> {
        &self.space
    }

    fn execute(&self, instance: &Instance) -> Result<EvalResult, PipelineError> {
        match self.run_dag(instance) {
            // A crash is a failure with no score (Def. 2's crash semantics).
            Err(_) => Ok(EvalResult::of(bugdoc_core::Outcome::Fail)),
            Ok(artifact) => {
                let score = artifact.as_number().unwrap_or(f64::NAN);
                if score.is_nan() {
                    return Ok(EvalResult::of(bugdoc_core::Outcome::Fail));
                }
                Ok(EvalResult {
                    outcome: bugdoc_core::Outcome::from_check((self.succeed_if)(score)),
                    score: Some(score),
                })
            }
        }
    }

    fn cost(&self, _instance: &Instance) -> SimTime {
        self.cost
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// sum -> scale(factor) -> sink; fails when scaled sum < 10.
    fn toy_workflow() -> WorkflowPipeline {
        let mut wf = WorkflowBuilder::new("toy");
        let source = wf.module(
            "source",
            &[],
            vec![ParamDecl::ordinal("base", [1, 5])],
            |ctx| Ok(Artifact::Number(ctx.param_f64("base"))),
        );
        let scale = wf.module(
            "scale",
            &[source],
            vec![ParamDecl::ordinal("factor", [1, 2, 3])],
            |ctx| {
                let x = ctx.input(0).as_number().expect("number in");
                Ok(Artifact::Number(x * ctx.param_f64("factor")))
            },
        );
        wf.build(scale, |score| score >= 10.0)
    }

    fn inst(p: &WorkflowPipeline, base: i64, factor: i64) -> Instance {
        Instance::from_pairs(
            p.space(),
            [("base", Value::from(base)), ("factor", Value::from(factor))],
        )
    }

    #[test]
    fn dag_executes_and_scores() {
        let wf = toy_workflow();
        assert_eq!(wf.space().len(), 2);
        let good = inst(&wf, 5, 2);
        let eval = wf.execute(&good).unwrap();
        assert!(eval.outcome.is_succeed());
        assert_eq!(eval.score, Some(10.0));
        let bad = inst(&wf, 1, 3);
        assert!(wf.execute(&bad).unwrap().outcome.is_fail());
    }

    #[test]
    fn choice_module_becomes_parameter() {
        let mut wf = WorkflowBuilder::new("choices");
        let source = wf.module("source", &[], vec![], |_| Ok(Artifact::Number(4.0)));
        let est = wf.choice_module(
            "estimator",
            &[source],
            vec![],
            vec![
                Implementation::new("double", |ctx: &ModuleCtx| {
                    Ok(Artifact::Number(ctx.input(0).as_number().unwrap() * 2.0))
                }),
                Implementation::new("halve", |ctx: &ModuleCtx| {
                    Ok(Artifact::Number(ctx.input(0).as_number().unwrap() / 2.0))
                }),
            ],
        );
        let wf = wf.build(est, |s| s >= 5.0);
        let space = wf.space().clone();
        let impl_param = space.by_name("estimator.impl").expect("choice parameter");
        assert_eq!(space.domain(impl_param).len(), 2);

        let double = Instance::from_pairs(&space, [("estimator.impl", "double".into())]);
        assert!(wf.execute(&double).unwrap().outcome.is_succeed());
        let halve = Instance::from_pairs(&space, [("estimator.impl", "halve".into())]);
        assert!(wf.execute(&halve).unwrap().outcome.is_fail());
    }

    #[test]
    fn module_crash_is_fail() {
        let mut wf = WorkflowBuilder::new("crashy");
        let m = wf.module(
            "boom",
            &[],
            vec![ParamDecl::ordinal("x", [0, 1])],
            |ctx| {
                if ctx.param_f64("x") == 0.0 {
                    Err(ModuleError::new("division by zero"))
                } else {
                    Ok(Artifact::Number(1.0))
                }
            },
        );
        let wf = wf.build(m, |s| s > 0.0);
        let space = wf.space().clone();
        let crash = Instance::from_pairs(&space, [("x", 0.into())]);
        let eval = wf.execute(&crash).unwrap();
        assert!(eval.outcome.is_fail());
        assert_eq!(eval.score, None);
        let ok = Instance::from_pairs(&space, [("x", 1.into())]);
        assert!(wf.execute(&ok).unwrap().outcome.is_succeed());
    }

    #[test]
    fn non_numeric_sink_is_fail() {
        let mut wf = WorkflowBuilder::new("texty");
        let m = wf.module("t", &[], vec![], |_| Ok(Artifact::Text("hello".into())));
        let wf = wf.build(m, |_| true);
        let inst = wf.space().instances().next();
        // Zero-parameter space has exactly one (empty) instance.
        let inst = inst.unwrap_or_else(|| Instance::new(vec![]));
        assert!(wf.execute(&inst).unwrap().outcome.is_fail());
    }

    #[test]
    #[should_panic(expected = "duplicate module name")]
    fn duplicate_module_rejected() {
        let mut wf = WorkflowBuilder::new("dup");
        wf.module("m", &[], vec![], |_| Ok(Artifact::Empty));
        wf.module("m", &[], vec![], |_| Ok(Artifact::Empty));
    }

    #[test]
    #[should_panic(expected = "used by two modules")]
    fn duplicate_parameter_rejected() {
        let mut wf = WorkflowBuilder::new("dup-param");
        wf.module("a", &[], vec![ParamDecl::ordinal("x", [1, 2])], |_| {
            Ok(Artifact::Empty)
        });
        let b = wf.module("b", &[], vec![ParamDecl::ordinal("x", [1, 2])], |_| {
            Ok(Artifact::Empty)
        });
        // The collision is detected when the space is compiled.
        let _ = wf.build(b, |_| true);
    }

    #[test]
    #[should_panic(expected = "did not declare parameter")]
    fn undeclared_param_read_panics() {
        let mut wf = WorkflowBuilder::new("sneaky");
        let m = wf.module("m", &[], vec![], |ctx| {
            let _ = ctx.param("ghost");
            Ok(Artifact::Empty)
        });
        let wf = wf.build(m, |_| true);
        let _ = wf.run_dag(&Instance::new(vec![]));
    }

    #[test]
    fn diamond_dependency_runs_once_per_module() {
        // a -> b, a -> c, (b,c) -> d.
        let mut wf = WorkflowBuilder::new("diamond");
        let a = wf.module("a", &[], vec![], |_| Ok(Artifact::Number(3.0)));
        let b = wf.module("b", &[a], vec![], |ctx| {
            Ok(Artifact::Number(ctx.input(0).as_number().unwrap() + 1.0))
        });
        let c = wf.module("c", &[a], vec![], |ctx| {
            Ok(Artifact::Number(ctx.input(0).as_number().unwrap() * 2.0))
        });
        let d = wf.module("d", &[b, c], vec![], |ctx| {
            Ok(Artifact::Number(
                ctx.input(0).as_number().unwrap() + ctx.input(1).as_number().unwrap(),
            ))
        });
        let wf = wf.build(d, |s| s >= 10.0);
        let result = wf.run_dag(&Instance::new(vec![])).unwrap();
        assert_eq!(result.as_number(), Some(10.0)); // (3+1) + (3*2)
    }
}
