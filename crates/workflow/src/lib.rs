//! # bugdoc-workflow
//!
//! The dynamic pipeline-execution layer of the BugDoc reproduction: a
//! dataflow engine for DAGs of parameterized modules with swappable
//! implementations (paper §3, Def. 1 — manipulable parameters include
//! "hyperparameters, input data, versions of programs, computational
//! modules"), compiled into debuggable [`bugdoc_engine::Pipeline`]s.
//!
//! The [`ml`] module grounds it: a working miniature ML substrate (blob
//! datasets, centroid / k-NN / boosted-stump classifiers, k-fold CV) whose
//! [`ml::figure1_workflow`] reproduces the paper's Figure-1 pipeline with
//! failures that *emerge from real computation* rather than planted lookup
//! tables.

#![warn(missing_docs)]

mod artifact;
mod graph;
pub mod ml;

pub use artifact::{Artifact, Frame};
pub use graph::{
    Implementation, ModuleCtx, ModuleError, ModuleId, ParamDecl, WorkflowBuilder, WorkflowPipeline,
};
