//! A real miniature machine-learning substrate and the Figure-1 workflow
//! built on it.
//!
//! Unlike `bugdoc-pipelines`' response-surface simulators, everything here
//! *actually computes*: synthetic Gaussian-blob datasets, three working
//! classifiers, k-fold cross-validation — wired into a
//! [`WorkflowPipeline`](crate::WorkflowPipeline) whose failures *emerge*
//! from the computation:
//!
//! * **library version 2.0** carries an axis-confusion regression in the
//!   normalize module (it z-scores per *row* instead of per column, so the
//!   class offset — constant within a row — cancels out entirely) — every
//!   estimator drops to chance accuracy;
//! * the **boosted-stumps estimator** is a binary-only algorithm whose
//!   one-vs-rest reduction degenerates on multi-class data — it fails on
//!   the 3-class and 10-class datasets but works on the binary one,
//!   reproducing the intro's gradient-boosting observation.

use crate::artifact::{Artifact, Frame};
use crate::graph::{Implementation, ModuleCtx, ModuleError, ParamDecl, WorkflowBuilder, WorkflowPipeline};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// The workflow's evaluation threshold: succeed iff CV accuracy ≥ 0.7
/// (above the 2/3 ceiling of a degenerate binary reduction on 3 classes).
pub const ACCURACY_THRESHOLD: f64 = 0.7;

/// Deterministic Gaussian sample via Box–Muller.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Generates `classes × per_class` rows of `width` features: class `c`'s
/// blob is centred at `c * separation` on every feature, with the given
/// noise std. Deterministic per seed.
pub fn blobs(
    classes: usize,
    per_class: usize,
    width: usize,
    separation: f64,
    noise: f64,
    seed: u64,
) -> Frame {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(classes * per_class);
    let mut labels = Vec::with_capacity(classes * per_class);
    // Interleave classes so deterministic k-fold striping stays balanced.
    for i in 0..per_class {
        for c in 0..classes {
            let _ = i;
            let row: Vec<f64> = (0..width)
                .map(|_| c as f64 * separation + noise * gaussian(&mut rng))
                .collect();
            rows.push(row);
            labels.push(c as i64);
        }
    }
    Frame::new(
        (0..width).map(|f| format!("f{f}")).collect(),
        rows,
        labels,
    )
}

/// The benchmark datasets of Figure 1, as real data.
pub fn load_dataset(name: &str) -> Frame {
    match name {
        // 3 well-separated classes — the "Iris" role.
        "iris" => blobs(3, 30, 4, 4.0, 1.0, 0xA11CE),
        // 10 classes, wider feature space — the "Digits" role.
        "digits" => blobs(10, 15, 16, 4.0, 1.0, 0xD161),
        // 2 noisier classes — the "Images" role (binary).
        "images" => blobs(2, 60, 8, 4.0, 2.0, 0x1A6E),
        other => panic!("unknown dataset {other:?}"),
    }
}

/// A trained classifier.
pub trait Classifier {
    /// Predicts the class of one feature row.
    fn predict(&self, row: &[f64]) -> i64;
}

/// Nearest-class-centroid classifier (the "logistic regression" role: a
/// linear-boundary method that is strong on blob data).
pub struct Centroid {
    centroids: Vec<(i64, Vec<f64>)>,
}

impl Centroid {
    /// Fits per-class feature means.
    pub fn fit(train: &Frame) -> Self {
        let mut centroids = Vec::new();
        for class in train.classes() {
            let members: Vec<usize> = (0..train.len())
                .filter(|&i| train.label(i) == class)
                .collect();
            let mut mean = vec![0.0; train.width()];
            for &i in &members {
                for (m, x) in mean.iter_mut().zip(train.row(i)) {
                    *m += x;
                }
            }
            for m in &mut mean {
                *m /= members.len().max(1) as f64;
            }
            centroids.push((class, mean));
        }
        Centroid { centroids }
    }
}

impl Classifier for Centroid {
    fn predict(&self, row: &[f64]) -> i64 {
        self.centroids
            .iter()
            .min_by(|(_, a), (_, b)| {
                dist2(row, a)
                    .partial_cmp(&dist2(row, b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(c, _)| *c)
            .expect("fitted on non-empty data")
    }
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// k-nearest-neighbours (the "decision tree" role: a flexible non-linear
/// method, robust across the benchmark datasets).
pub struct Knn {
    k: usize,
    train: Arc<Frame>,
}

impl Knn {
    /// Stores the training data.
    pub fn fit(train: Arc<Frame>, k: usize) -> Self {
        Knn { k: k.max(1), train }
    }
}

impl Classifier for Knn {
    fn predict(&self, row: &[f64]) -> i64 {
        let mut scored: Vec<(f64, i64)> = (0..self.train.len())
            .map(|i| (dist2(row, self.train.row(i)), self.train.label(i)))
            .collect();
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut votes: std::collections::HashMap<i64, usize> = std::collections::HashMap::new();
        for (_, label) in scored.iter().take(self.k) {
            *votes.entry(*label).or_insert(0) += 1;
        }
        votes
            .into_iter()
            .max_by_key(|&(label, n)| (n, std::cmp::Reverse(label)))
            .map(|(label, _)| label)
            .expect("k >= 1")
    }
}

/// A decision stump on one feature.
struct Stump {
    feature: usize,
    threshold: f64,
    polarity: f64,
}

impl Stump {
    fn raw(&self, row: &[f64]) -> f64 {
        if row[self.feature] > self.threshold {
            self.polarity
        } else {
            -self.polarity
        }
    }
}

/// Boosted decision stumps (the "gradient boosting" role). **Binary-only**:
/// the one-vs-rest reduction used for multi-class inputs degenerates to a
/// majority-vs-rest split and predicts almost everything into one side — a
/// genuine algorithmic limitation that reproduces the paper's Figure-1
/// observation (gradient boosting low on Iris/Digits, high on Images).
pub struct BoostedStumps {
    stumps: Vec<(f64, Stump)>,
    /// Class encoded as +1.
    positive: i64,
    /// Class predicted on the −1 side.
    negative: i64,
}

impl BoostedStumps {
    /// AdaBoost with `rounds` stumps over the (reduced-to-binary) labels.
    pub fn fit(train: &Frame, rounds: usize) -> Self {
        let classes = train.classes();
        // The broken multi-class reduction: first class vs everything else.
        let positive = classes[0];
        let negative = *classes.last().expect("non-empty");
        let y: Vec<f64> = (0..train.len())
            .map(|i| if train.label(i) == positive { 1.0 } else { -1.0 })
            .collect();

        let n = train.len();
        let mut weights = vec![1.0 / n as f64; n];
        let mut stumps = Vec::new();
        for _ in 0..rounds {
            // Best stump under current weights.
            let mut best: Option<(f64, Stump)> = None;
            for feature in 0..train.width() {
                let mut values: Vec<f64> = (0..n).map(|i| train.row(i)[feature]).collect();
                values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                values.dedup();
                for w in values.windows(2) {
                    let threshold = (w[0] + w[1]) / 2.0;
                    for polarity in [1.0, -1.0] {
                        let stump = Stump {
                            feature,
                            threshold,
                            polarity,
                        };
                        let err: f64 = (0..n)
                            .filter(|&i| stump.raw(train.row(i)) != y[i])
                            .map(|i| weights[i])
                            .sum();
                        if best
                            .as_ref()
                            .map(|(e, _)| err < *e)
                            .unwrap_or(true)
                        {
                            best = Some((err, stump));
                        }
                    }
                }
            }
            let Some((err, stump)) = best else { break };
            let err = err.clamp(1e-9, 1.0 - 1e-9);
            let alpha = 0.5 * ((1.0 - err) / err).ln();
            for i in 0..n {
                let margin = y[i] * stump.raw(train.row(i));
                weights[i] *= (-alpha * margin).exp();
            }
            let total: f64 = weights.iter().sum();
            for w in &mut weights {
                *w /= total;
            }
            stumps.push((alpha, stump));
            if err < 1e-6 {
                break;
            }
        }
        BoostedStumps {
            stumps,
            positive,
            negative,
        }
    }
}

impl Classifier for BoostedStumps {
    fn predict(&self, row: &[f64]) -> i64 {
        let score: f64 = self.stumps.iter().map(|(a, s)| a * s.raw(row)).sum();
        if score >= 0.0 {
            self.positive
        } else {
            self.negative
        }
    }
}

/// Mean accuracy of `fit` over deterministic `n_folds`-fold CV.
pub fn cross_validate(
    data: &Arc<Frame>,
    n_folds: usize,
    fit: impl Fn(Arc<Frame>) -> Box<dyn Classifier>,
) -> f64 {
    let mut total = 0.0;
    for k in 0..n_folds {
        let (train, test) = data.fold(k, n_folds);
        let model = fit(Arc::new(train));
        let correct = (0..test.len())
            .filter(|&i| model.predict(test.row(i)) == test.label(i))
            .count();
        total += correct as f64 / test.len().max(1) as f64;
    }
    total / n_folds as f64
}

/// Builds the Figure-1 pipeline as a *real* workflow DAG:
///
/// ```text
/// load(dataset) ──▶ normalize(library_version) ──▶ estimator{centroid|knn|boosted} ──▶ accuracy
/// ```
///
/// The evaluation succeeds iff the 5-fold CV accuracy is ≥ 0.6 (Example 1's
/// threshold). Both root causes *emerge from the computation*:
/// `library_version = 2` (the axis-confusion regression) and
/// `estimator.impl = boosted_stumps ∧ dataset ≠ images` (binary-only
/// boosting on multi-class data).
pub fn figure1_workflow() -> WorkflowPipeline {
    let mut wf = WorkflowBuilder::new("figure1-ml (real computation)");

    let load = wf.module(
        "load",
        &[],
        vec![ParamDecl::categorical(
            "dataset",
            ["iris", "digits", "images"],
        )],
        |ctx: &ModuleCtx| {
            let name = ctx.param("dataset").to_string();
            Ok(Artifact::Frame(Arc::new(load_dataset(&name))))
        },
    );

    let normalize = wf.module(
        "normalize",
        &[load],
        vec![ParamDecl::ordinal("library_version", [1, 2])],
        |ctx: &ModuleCtx| {
            let frame = ctx
                .input(0)
                .as_frame()
                .ok_or_else(|| ModuleError::new("normalize expects a frame"))?;
            let version = ctx.param_f64("library_version");
            let normalized = if version < 2.0 {
                // v1.0: per-column z-score.
                let stats = frame.column_stats();
                let cols = stats.clone();
                let mut rows = Vec::with_capacity(frame.len());
                for i in 0..frame.len() {
                    rows.push(
                        frame
                            .row(i)
                            .iter()
                            .enumerate()
                            .map(|(c, &x)| {
                                let (mean, std) = cols[c];
                                (x - mean) / if std > 1e-9 { std } else { 1.0 }
                            })
                            .collect::<Vec<f64>>(),
                    );
                }
                Frame::new(
                    frame.columns().to_vec(),
                    rows,
                    (0..frame.len()).map(|i| frame.label(i)).collect(),
                )
            } else {
                // v2.0 regression: the classic axis confusion — z-scoring
                // per ROW instead of per column. The class offset is
                // constant within a row, so it cancels and only noise
                // survives: every downstream estimator sees pure noise.
                let mut rows = Vec::with_capacity(frame.len());
                for i in 0..frame.len() {
                    let row = frame.row(i);
                    let n = row.len().max(1) as f64;
                    let mean = row.iter().sum::<f64>() / n;
                    let var = row.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
                    let std = var.sqrt().max(1e-9);
                    rows.push(row.iter().map(|x| (x - mean) / std).collect::<Vec<f64>>());
                }
                Frame::new(
                    frame.columns().to_vec(),
                    rows,
                    (0..frame.len()).map(|i| frame.label(i)).collect(),
                )
            };
            Ok(Artifact::Frame(Arc::new(normalized)))
        },
    );

    let estimator = wf.choice_module(
        "estimator",
        &[normalize],
        vec![],
        vec![
            Implementation::new("centroid", |ctx: &ModuleCtx| {
                let data = expect_frame(ctx)?;
                Ok(Artifact::Number(cross_validate(&data, 5, |train| {
                    Box::new(Centroid::fit(&train))
                })))
            }),
            Implementation::new("knn", |ctx: &ModuleCtx| {
                let data = expect_frame(ctx)?;
                Ok(Artifact::Number(cross_validate(&data, 5, |train| {
                    Box::new(Knn::fit(train, 3))
                })))
            }),
            Implementation::new("boosted_stumps", |ctx: &ModuleCtx| {
                let data = expect_frame(ctx)?;
                Ok(Artifact::Number(cross_validate(&data, 5, |train| {
                    Box::new(BoostedStumps::fit(&train, 8))
                })))
            }),
        ],
    );

    wf.build(estimator, |accuracy| accuracy >= ACCURACY_THRESHOLD)
}

fn expect_frame(ctx: &ModuleCtx) -> Result<Arc<Frame>, ModuleError> {
    ctx.input(0)
        .as_frame()
        .cloned()
        .ok_or_else(|| ModuleError::new("estimator expects a frame"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bugdoc_core::Instance;
    use bugdoc_engine::Pipeline;

    fn run(wf: &WorkflowPipeline, dataset: &str, version: i64, estimator: &str) -> (bool, f64) {
        let inst = Instance::from_pairs(
            wf.space(),
            [
                ("dataset", dataset.into()),
                ("library_version", version.into()),
                ("estimator.impl", estimator.into()),
            ],
        );
        let eval = wf.execute(&inst).unwrap();
        (eval.outcome.is_succeed(), eval.score.unwrap_or(f64::NAN))
    }

    #[test]
    fn datasets_have_expected_shapes() {
        assert_eq!(load_dataset("iris").classes().len(), 3);
        assert_eq!(load_dataset("digits").classes().len(), 10);
        assert_eq!(load_dataset("images").classes().len(), 2);
        assert_eq!(load_dataset("iris").len(), 90);
    }

    #[test]
    fn blobs_are_deterministic() {
        let a = blobs(2, 5, 3, 4.0, 1.0, 7);
        let b = blobs(2, 5, 3, 4.0, 1.0, 7);
        assert_eq!(a, b);
        let c = blobs(2, 5, 3, 4.0, 1.0, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn v1_healthy_estimators_pass_everywhere() {
        let wf = figure1_workflow();
        for dataset in ["iris", "digits", "images"] {
            for est in ["centroid", "knn"] {
                let (ok, acc) = run(&wf, dataset, 1, est);
                assert!(ok, "{est} on {dataset} scored {acc}");
                assert!(acc > 0.8, "{est} on {dataset} scored only {acc}");
            }
        }
    }

    #[test]
    fn boosting_is_binary_only() {
        let wf = figure1_workflow();
        // High on the binary dataset...
        let (ok, acc) = run(&wf, "images", 1, "boosted_stumps");
        assert!(ok, "boosting on images scored {acc}");
        // ...at chance-ish on the multi-class ones (the Figure-1 story).
        for dataset in ["iris", "digits"] {
            let (ok, acc) = run(&wf, dataset, 1, "boosted_stumps");
            assert!(!ok, "boosting on {dataset} unexpectedly scored {acc}");
        }
    }

    #[test]
    fn v2_regression_breaks_everything() {
        let wf = figure1_workflow();
        for dataset in ["iris", "digits", "images"] {
            for est in ["centroid", "knn", "boosted_stumps"] {
                let (ok, acc) = run(&wf, dataset, 2, est);
                assert!(!ok, "{est} on {dataset} v2 scored {acc}");
            }
        }
    }

    #[test]
    fn evaluation_is_deterministic() {
        let wf = figure1_workflow();
        let a = run(&wf, "digits", 1, "knn");
        let b = run(&wf, "digits", 1, "knn");
        assert_eq!(a, b);
    }

    /// The full circle: BugDoc debugging the *real* workflow discovers both
    /// emergent causes.
    #[test]
    fn bugdoc_finds_emergent_causes() {
        use bugdoc_algorithms::{diagnose, BugDocConfig};
        use bugdoc_engine::{Executor, ExecutorConfig};

        let wf = Arc::new(figure1_workflow());
        let space = wf.space().clone();
        let exec = Executor::new(
            wf.clone() as Arc<dyn Pipeline>,
            ExecutorConfig::default(),
        );
        // The provenance of Figure 1: a handful of runs across the space.
        for (d, v, e) in [
            ("iris", 1, "centroid"),
            ("digits", 1, "knn"),
            ("iris", 2, "boosted_stumps"),
            ("digits", 1, "boosted_stumps"),
            ("images", 1, "boosted_stumps"),
        ] {
            let inst = Instance::from_pairs(
                &space,
                [
                    ("dataset", d.into()),
                    ("library_version", v.into()),
                    ("estimator.impl", e.into()),
                ],
            );
            exec.evaluate(&inst).unwrap();
        }

        let diagnosis = diagnose(&exec, &BugDocConfig::default()).unwrap();
        let rendered: Vec<String> = diagnosis
            .causes
            .conjuncts()
            .iter()
            .map(|c| c.display(&space).to_string())
            .collect();
        // Version cause.
        assert!(
            rendered.iter().any(|c| c.contains("library_version = 2")),
            "missing version cause: {rendered:?}"
        );
        // Boosting-on-multiclass cause.
        assert!(
            rendered.iter().any(|c| c.contains("boosted_stumps")
                && (c.contains("dataset ≠ images") || c.contains("dataset ="))),
            "missing boosting cause: {rendered:?}"
        );
    }
}
