//! From root cause to root *records*: the paper's future-work pipeline
//! (§6) end to end.
//!
//! 1. BugDoc identifies a **dataset parameter** as part of the minimal
//!    definitive root cause (here: the enterprise pipeline fails whenever it
//!    ingests the `acme_feed` batch).
//! 2. Group testing then drills into that dataset to find *which records*
//!    are problematic, in O(d·log n) pipeline runs instead of one per
//!    record.
//! 3. Observed variables recorded alongside each run enrich the explanation
//!    with what the failure looked like from inside.
//!
//! Run with: `cargo run --example data_debugging`

use bugdoc::algorithms::group_testing::{
    find_defective_elements, GroupTestConfig, SubsetOutcome,
};
use bugdoc::eval::{enrich_explanations, EnrichConfig, ObservationTable};
use bugdoc::prelude::*;
use std::sync::Arc;

/// The dataset behind the `acme_feed` parameter value: 200 records, two of
/// them malformed (the resolution change corrupted rows 57 and 141).
const N_RECORDS: usize = 200;
const CORRUPT: [usize; 2] = [57, 141];

fn main() {
    // ---- Stage 1: which parameters cause the failure? -------------------
    let space = ParamSpace::builder()
        .categorical("feed", ["internal", "acme_feed", "datastream"])
        .categorical("model", ["arima", "prophet"])
        .ordinal("window", [6, 12, 24])
        .build();
    let feed = space.by_name("feed").unwrap();

    let pipeline = FnPipeline::new(space.clone(), move |inst: &Instance| {
        // The pipeline ingests the configured feed; the acme batch contains
        // corrupt records, so every configuration using it fails.
        EvalResult::of(Outcome::from_check(
            inst.get(feed) != &Value::from("acme_feed"),
        ))
    });
    let exec = Executor::new(
        Arc::new(pipeline) as Arc<dyn Pipeline>,
        ExecutorConfig::default(),
    );
    // Observed variables: recorded per run by the harness.
    let mut observations = ObservationTable::new(["parse_errors", "rows_ingested_bucket"]);
    for (f, m, w) in [
        ("acme_feed", "arima", 12),
        ("acme_feed", "prophet", 24),
        ("internal", "arima", 6),
        ("datastream", "prophet", 12),
        ("internal", "prophet", 24),
    ] {
        let inst = Instance::from_pairs(
            &space,
            [("feed", f.into()), ("model", m.into()), ("window", w.into())],
        );
        let outcome = exec.evaluate(&inst).unwrap();
        let failing = outcome.is_fail();
        observations.record(
            inst,
            vec![
                Value::from(if failing { 2i64 } else { 0 }), // parse_errors
                Value::from(if failing { 1i64 } else { 4 }), // rows bucket
            ],
        );
    }

    let diagnosis = diagnose(&exec, &BugDocConfig::default()).unwrap();
    println!("Stage 1 — parameter-level root cause(s):");
    for cause in diagnosis.causes.conjuncts() {
        println!("  {}", cause.display(&space));
    }

    // Record observations for everything BugDoc executed during diagnosis.
    for run in exec.provenance().runs() {
        if observations.get(&run.instance).is_none() {
            let failing = run.outcome().is_fail();
            observations.record(
                run.instance.clone(),
                vec![
                    Value::from(if failing { 2i64 } else { 0 }),
                    Value::from(if failing { 1i64 } else { 4 }),
                ],
            );
        }
    }
    let enriched = enrich_explanations(
        &exec.provenance(),
        &observations,
        diagnosis.causes.conjuncts(),
        &EnrichConfig::default(),
    );
    println!("\nStage 2 — enriched with observed variables:");
    for e in &enriched {
        println!("  {}", e.render(&space));
    }

    // ---- Stage 3: which records inside the implicated dataset? ----------
    // The cause names the acme feed; rerun the pipeline on record subsets.
    println!("\nStage 3 — group testing inside the acme_feed dataset:");
    let mut runs = 0usize;
    let mut oracle = |subset: &[usize]| {
        runs += 1;
        if subset.iter().any(|i| CORRUPT.contains(i)) {
            SubsetOutcome::Defective
        } else {
            SubsetOutcome::Clean
        }
    };
    let report = find_defective_elements(N_RECORDS, &mut oracle, &GroupTestConfig::default());
    println!(
        "  corrupt records: {:?}  (found in {} pipeline runs over {} records)",
        report.defective, report.tests_used, N_RECORDS
    );
    assert_eq!(report.defective, CORRUPT.to_vec());
    assert!(report.tests_used < 30, "group testing must beat linear scan");
    println!(
        "  a linear scan would have needed {N_RECORDS} runs; group testing used {}",
        report.tests_used
    );
}
