//! The DBSherlock scenario (paper §5.3): diagnose OLTP performance-anomaly
//! classes from historical workload logs only — no new instances can be run,
//! so the executor replays recorded logs and "early-stops" on anything else.
//! Asserted causes are then scored as a failure classifier on a 25% holdout
//! (the paper reports 98% accuracy).
//!
//! Run with: `cargo run --example dbsherlock`

use bugdoc::eval::classify_holdout;
use bugdoc::pipelines::{DbSherlockConfig, DbSherlockDataset};
use bugdoc::prelude::*;
use std::sync::Arc;

fn main() {
    let dataset = DbSherlockDataset::generate(&DbSherlockConfig {
        n_classes: 5,
        ..DbSherlockConfig::default()
    });
    println!(
        "Generated {} labeled workload logs over {} bucketed statistics\n",
        dataset.logs().len(),
        dataset.space().len()
    );

    let mut total_correct = 0usize;
    let mut total = 0usize;
    for class in 0..dataset.n_classes() {
        let problem = dataset.problem(class);
        let space = problem.space.clone();

        // Historical replay: only train + budget-pool logs are executable.
        let exec = Executor::with_provenance(
            Arc::new(problem.historical_pipeline()) as Arc<dyn Pipeline>,
            ExecutorConfig::default(),
            problem.initial_provenance(),
        );
        let causes = match diagnose(&exec, &BugDocConfig::default()) {
            Ok(d) => d.causes.conjuncts().to_vec(),
            Err(e) => {
                println!("class {class}: no diagnosis ({e})");
                continue;
            }
        };

        println!("anomaly class {class}:");
        println!(
            "  planted cause:  {}",
            dataset.causes()[class].display(&space)
        );
        for cause in &causes {
            let exact = problem.truth.matches_minimal(&space, cause);
            println!(
                "  asserted cause: {}{}",
                cause.display(&space),
                if exact { "  [exact]" } else { "" }
            );
        }

        let report = classify_holdout(&causes, &problem.holdout);
        total_correct += report.true_positives + report.true_negatives;
        total += report.total();
        println!(
            "  holdout accuracy: {:.1}%  (TP {}, TN {}, FP {}, FN {})\n",
            report.accuracy() * 100.0,
            report.true_positives,
            report.true_negatives,
            report.false_positives,
            report.false_negatives
        );
    }

    println!(
        "Overall holdout accuracy: {:.1}%  (paper: 98%)",
        100.0 * total_correct as f64 / total.max(1) as f64
    );
}
