//! The paper's first motivating anecdote (§1): sales forecasts collapsed
//! because an external data feed silently changed from monthly to weekly
//! resolution. The analysts "expend[ed] considerable effort reasoning about
//! the effects of the many possible different settings" — BugDoc automates
//! exactly that loop.
//!
//! Run with: `cargo run --example enterprise_analytics`

use bugdoc::pipelines::EnterpriseAnalyticsPipeline;
use bugdoc::prelude::*;
use std::sync::Arc;

fn main() {
    let pipeline = Arc::new(EnterpriseAnalyticsPipeline::new());
    let space = pipeline.space().clone();

    // The on-call data scientist has a handful of recent runs: the nightly
    // production configuration (now failing) and a few older ones.
    let exec = Executor::new(
        pipeline.clone() as Arc<dyn Pipeline>,
        ExecutorConfig::default(),
    );
    let runs = [
        // The production run that triggered the alert.
        [
            ("data_provider", Value::from("acme_feed")),
            ("feed_resolution", "weekly".into()),
            ("forecast_model", "prophet".into()),
            ("feature_window_months", 12.into()),
            ("seasonality", "additive".into()),
        ],
        // Last quarter's configuration, still green.
        [
            ("data_provider", "internal".into()),
            ("feed_resolution", "monthly".into()),
            ("forecast_model", "arima".into()),
            ("feature_window_months", 6.into()),
            ("seasonality", "none".into()),
        ],
        // An experiment from the backlog.
        [
            ("data_provider", "datastream".into()),
            ("feed_resolution", "daily".into()),
            ("forecast_model", "xgboost".into()),
            ("feature_window_months", 24.into()),
            ("seasonality", "multiplicative".into()),
        ],
    ];
    for pairs in runs {
        let inst = Instance::from_pairs(&space, pairs);
        let outcome = exec.evaluate(&inst).unwrap();
        println!("{}  ->  {outcome}", inst.display(&space));
    }

    println!("\nDiagnosing...");
    let diagnosis = diagnose(&exec, &BugDocConfig::default()).unwrap();
    for cause in diagnosis.causes.conjuncts() {
        println!("root cause: {}", cause.display(&space));
    }
    println!(
        "({} new pipeline instances executed)",
        diagnosis.new_executions
    );

    // The diagnosis should point at the feed change, not at the model or the
    // window the analysts would otherwise chase.
    let truth = pipeline.truth();
    assert!(
        diagnosis
            .causes
            .conjuncts()
            .iter()
            .any(|c| truth.matches_minimal(&space, c)),
        "expected the acme_feed/weekly cause"
    );
    println!("\nThe culprit is the external feed at weekly resolution — the paper's anecdote.");
}
