//! Debugging GAN training (paper §5.3): find the hyperparameter regimes that
//! cause mode collapse, measured as an FID threshold crossing. Each real
//! configuration takes ~10 hours to train, so the virtual clock reports how
//! long the investigation *would* have taken at different worker counts.
//!
//! Run with: `cargo run --example gan_debugging`

use bugdoc::pipelines::GanPipeline;
use bugdoc::prelude::*;
use bugdoc::synth::Truth;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    let pipeline = Arc::new(GanPipeline::new());
    let space = pipeline.space().clone();
    let truth: Truth = pipeline.truth().clone();

    for workers in [1usize, 5] {
        let exec = Executor::new(
            pipeline.clone() as Arc<dyn Pipeline>,
            ExecutorConfig {
                workers,
                budget: None,
                ..Default::default()
            },
        );

        // Seed the history the way a research group would have it: a few
        // collapsed runs and a few healthy ones.
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..3 {
            if let Some(bad) = truth.sample_failing(&space, &mut rng) {
                exec.evaluate(&bad).unwrap();
            }
        }
        for _ in 0..6 {
            if let Some(good) = truth.sample_succeeding(&space, &mut rng) {
                exec.evaluate(&good).unwrap();
            }
        }

        let diagnosis = diagnose(
            &exec,
            &BugDocConfig {
                ddt: DdtConfig {
                    mode: DdtMode::FindAll,
                    verification_samples: 12,
                    seed: 7,
                    ..DdtConfig::default()
                },
                ..BugDocConfig::default()
            },
        )
        .unwrap();

        let stats = exec.stats();
        println!("== {workers} execution worker(s) ==");
        for cause in diagnosis.causes.conjuncts() {
            let exact = truth.matches_minimal(&space, cause);
            println!(
                "  mode-collapse cause: {}{}",
                cause.display(&space),
                if exact { "  [matches ground truth]" } else { "" }
            );
        }
        println!(
            "  instances trained: {}   virtual wall-clock: {:.1} days",
            stats.new_executions,
            stats.sim_time.secs() / 86_400.0
        );
        println!();
    }

    println!(
        "With five workers the same investigation fits in a fraction of the
single-worker wall-clock — the parallelism argument of paper §4.3."
    );
}
