//! Quickstart: debug the paper's Figure-1 machine-learning pipeline.
//!
//! Reproduces Example 1 end-to-end: starting from the three previously-run
//! instances of Table 1, Shortcut executes a linear number of new instances
//! and asserts `Library Version = 2` as the minimal definitive root cause;
//! the combined driver additionally surfaces the second cause
//! (`Estimator = Gradient Boosting ∧ Dataset ≠ Images`).
//!
//! Run with: `cargo run --example quickstart`

use bugdoc::prelude::*;
use bugdoc::pipelines::MlPipeline;
use std::sync::Arc;

fn main() {
    let pipeline = Arc::new(MlPipeline::new());
    let space = pipeline.space().clone();

    // The "previously run" instances the data scientist already has.
    let history = pipeline.table1_history();
    println!("Initial provenance (Table 1):\n{}", history.to_tsv());

    let exec = Executor::with_provenance(
        pipeline.clone() as Arc<dyn Pipeline>,
        ExecutorConfig::default(), // 5 workers, no budget — the paper's setup
        history,
    );

    // Step 1: plain Shortcut from the failing instance toward its disjoint
    // success, exactly as in Example 1.
    let cp_f = exec
        .with_provenance_ref(|p| p.first_failing().cloned())
        .expect("Table 1 has a failing run");
    let cp_g = exec
        .with_provenance_ref(|p| p.disjoint_successes(&cp_f).next().cloned())
        .expect("Table 1 has a disjoint success");
    let report = shortcut(&exec, &cp_f, &cp_g, &ShortcutConfig::default()).unwrap();
    println!(
        "Shortcut asserted: {}   ({} new instances)",
        report
            .cause
            .as_ref()
            .map(|c| c.display(&space).to_string())
            .unwrap_or_else(|| "∅".into()),
        report.new_executions
    );
    println!("\nProvenance after Shortcut (Table 2):\n{}", exec.provenance().to_tsv());

    // Step 2: the combined driver (Stacked Shortcut + Debugging Decision
    // Trees) digs out every root cause, including the gradient-boosting one
    // the intro reasons about. Figure 1's provenance log also contains a
    // low-scoring gradient-boosting run on Digits at version 1.0 — record it
    // so the history matches the figure.
    exec.evaluate(&pipeline.instance("Digits", "Gradient Boosting", 1.0))
        .unwrap();
    let diagnosis = diagnose(&exec, &BugDocConfig::default()).unwrap();
    println!(
        "Combined BugDoc diagnosis ({} more instances):",
        diagnosis.new_executions
    );
    for cause in diagnosis.causes.conjuncts() {
        println!("  root cause: {}", cause.display(&space));
    }

    // Sanity: both planted causes were found.
    let truth = pipeline.truth();
    let found = diagnosis
        .causes
        .conjuncts()
        .iter()
        .filter(|c| truth.matches_minimal(&space, c))
        .count();
    println!(
        "\n{found} of {} ground-truth causes recovered exactly",
        truth.len()
    );
}
