//! The paper's second motivating anecdote (§1): supernova visualizations
//! grew artifacts that "could have indicated a discovery"; after substantial
//! verification effort the physicists traced them to a bug in the new
//! version of the data-processing software. Here BugDoc finds the version
//! regression automatically, using the most-different heuristic when no
//! fully disjoint good run exists.
//!
//! Run with: `cargo run --example supernova`

use bugdoc::pipelines::SupernovaPipeline;
use bugdoc::prelude::*;
use std::sync::Arc;

fn main() {
    let pipeline = Arc::new(SupernovaPipeline::new());
    let space = pipeline.space().clone();
    let exec = Executor::new(
        pipeline.clone() as Arc<dyn Pipeline>,
        ExecutorConfig::default(),
    );

    // The observation campaign's recent runs. Note there is no run disjoint
    // from the failing one on every parameter — the Disjointness Condition
    // fails, so Shortcut falls back to the most-different success (§4.1).
    let runs = [
        [
            ("telescope_site", Value::from("cerro_tololo")),
            ("processing_version", 40.into()),
            ("calibration", "extended".into()),
            ("detector_band", "i".into()),
            ("coadd_depth", 5.into()),
        ],
        [
            ("telescope_site", "cerro_tololo".into()),
            ("processing_version", 32.into()),
            ("calibration", "standard".into()),
            ("detector_band", "r".into()),
            ("coadd_depth", 5.into()),
        ],
        [
            ("telescope_site", "mauna_kea".into()),
            ("processing_version", 31.into()),
            ("calibration", "extended".into()),
            ("detector_band", "g".into()),
            ("coadd_depth", 3.into()),
        ],
    ];
    for pairs in runs {
        let inst = Instance::from_pairs(&space, pairs);
        let outcome = exec.evaluate(&inst).unwrap();
        println!("{}  ->  {outcome}", inst.display(&space));
    }

    // Stacked Shortcut alone is enough here (a single equality cause) and
    // uses a number of runs linear in the 5 parameters.
    let report = stacked_shortcut(&exec, &StackedConfig::default()).unwrap();
    match &report.cause {
        Some(cause) => println!(
            "\nStacked Shortcut root cause: {}  ({} instances, {} goods stacked)",
            cause.display(&space),
            report.new_executions,
            report.goods_used
        ),
        None => println!("\nStacked Shortcut asserted nothing"),
    }

    // Confirm against the planted truth: processing_version = 4.0.
    let truth = pipeline.truth();
    let cause = report.cause.expect("a cause is asserted");
    // The stacked union may carry extra equalities from the failing run; the
    // definitive core must still be the version pin.
    assert!(
        truth.is_definitive(&space, &cause),
        "asserted cause must be definitive"
    );
    println!("The artifacts trace to the new processing software — not to a discovery.");
}
