//! One synthetic pipeline, every method: generates a pipeline with a planted
//! disjunction-of-conjunctions root cause (paper §5.1), runs all three
//! BugDoc algorithms and both explanation baselines on matched budgets, and
//! prints what each asserted against the exact ground truth.
//!
//! Run with: `cargo run --example synthetic_sweep [seed]`

use bugdoc::baselines::{dataxray, exptables, smac};
use bugdoc::prelude::*;
use bugdoc::synth::{CauseScenario, SynthConfig, SyntheticPipeline};
use std::sync::Arc;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(17);

    let pipeline = Arc::new(SyntheticPipeline::generate(
        &SynthConfig {
            scenario: CauseScenario::DisjunctionOfConjunctions,
            n_params: (4, 7),
            n_values: (5, 10),
            ..SynthConfig::default()
        },
        seed,
    ));
    let space = pipeline.space().clone();
    let truth = pipeline.truth().clone();

    println!("seed {seed}: {} parameters, {} configurations", space.len(), space.total_configurations());
    println!("planted failure condition: {}\n", truth.failure_dnf().display(&space));

    let seeds = pipeline.seed_history(2, 6, seed ^ 0xabcd);
    let fresh = |budget: Option<usize>| {
        let mut prov = ProvenanceStore::new(space.clone());
        for (inst, eval) in &seeds {
            prov.record(inst.clone(), *eval);
        }
        Executor::with_provenance(
            pipeline.clone() as Arc<dyn Pipeline>,
            ExecutorConfig {
                workers: 5,
                budget,
                ..Default::default()
            },
            prov,
        )
    };

    // --- BugDoc algorithms ---
    let exec = fresh(None);
    let stacked = stacked_shortcut(&exec, &StackedConfig::default()).unwrap();
    let stacked_budget = exec.stats().new_executions;
    print_causes("Stacked Shortcut", &space, &stacked.cause.clone().into_iter().collect::<Vec<_>>(), &truth);
    println!("  ({stacked_budget} instances)\n");

    let exec = fresh(None);
    let ddt = debugging_decision_trees(
        &exec,
        &DdtConfig {
            mode: DdtMode::FindAll,
            seed,
            ..DdtConfig::default()
        },
    )
    .unwrap();
    let ddt_budget = exec.stats().new_executions;
    print_causes("Debugging Decision Trees (FindAll)", &space, ddt.causes.conjuncts(), &truth);
    println!("  ({ddt_budget} instances, {} rebuilds)\n", ddt.rebuilds);
    let bugdoc_prov = exec.provenance();

    // --- Baselines on matched budgets ---
    let smac_exec = fresh(Some(ddt_budget));
    smac::generate(&smac_exec, ddt_budget, &Default::default());
    let smac_prov = smac_exec.provenance();

    print_causes(
        "Data X-Ray on BugDoc instances",
        &space,
        &dataxray::explain(&bugdoc_prov, &Default::default()),
        &truth,
    );
    print_causes(
        "Data X-Ray on SMAC instances",
        &space,
        &dataxray::explain(&smac_prov, &Default::default()),
        &truth,
    );
    print_causes(
        "Explanation Tables on BugDoc instances",
        &space,
        &exptables::explain(&bugdoc_prov, &Default::default()),
        &truth,
    );
    print_causes(
        "Explanation Tables on SMAC instances",
        &space,
        &exptables::explain(&smac_prov, &Default::default()),
        &truth,
    );
}

fn print_causes(
    label: &str,
    space: &ParamSpace,
    causes: &[Conjunction],
    truth: &bugdoc::synth::Truth,
) {
    println!("{label}:");
    if causes.is_empty() {
        println!("  (nothing asserted)");
        return;
    }
    for cause in causes {
        let tag = if truth.matches_minimal(space, cause) {
            "  [minimal definitive — exact match]"
        } else if truth.is_definitive(space, cause) {
            "  [definitive but not minimal]"
        } else {
            "  [not definitive]"
        };
        println!("  {}{tag}", cause.display(space));
    }
}
