//! Figure 1 as a *real* dataflow workflow — no planted truth tables.
//!
//! The `bugdoc-workflow` engine runs an actual module DAG
//! (`load → normalize → estimator`) over real data with real classifiers;
//! the failures BugDoc diagnoses *emerge from the computation*:
//!
//! * normalize v2.0 z-scores per row instead of per column (axis
//!   confusion), cancelling the class signal → everything fails;
//! * the boosted-stumps estimator is binary-only; its degenerate one-vs-rest
//!   reduction fails on the 3- and 10-class datasets but not the binary one.
//!
//! Run with: `cargo run --release --example workflow_quickstart`

use bugdoc::prelude::*;
use bugdoc::workflow::ml::figure1_workflow;
use std::sync::Arc;

fn main() {
    let workflow = Arc::new(figure1_workflow());
    let space = workflow.space().clone();
    println!(
        "workflow '{}' compiled to {} parameters / {} configurations\n",
        workflow.name(),
        space.len(),
        space.total_configurations()
    );

    let exec = Executor::new(
        workflow.clone() as Arc<dyn Pipeline>,
        ExecutorConfig::default(),
    );

    // The data scientist's log: a few real runs (each executes the DAG —
    // data generation, normalization, 5-fold cross-validation).
    for (d, v, e) in [
        ("iris", 1, "centroid"),
        ("digits", 1, "knn"),
        ("iris", 2, "boosted_stumps"),
        ("digits", 1, "boosted_stumps"),
        ("images", 1, "boosted_stumps"),
    ] {
        let inst = Instance::from_pairs(
            &space,
            [
                ("dataset", d.into()),
                ("library_version", v.into()),
                ("estimator.impl", e.into()),
            ],
        );
        let outcome = exec.evaluate(&inst).unwrap();
        let score = exec
            .provenance()
            .lookup(&inst)
            .and_then(|e| e.score)
            .unwrap_or(f64::NAN);
        println!("{}  ->  {outcome} (accuracy {score:.2})", inst.display(&space));
    }

    println!("\nDiagnosing the live workflow...");
    let diagnosis = diagnose(&exec, &BugDocConfig::default()).unwrap();
    for cause in diagnosis.causes.conjuncts() {
        println!("  root cause: {}", cause.display(&space));
    }
    println!(
        "({} cross-validated pipeline runs executed by BugDoc)",
        diagnosis.new_executions
    );
}
