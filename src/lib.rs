//! # BugDoc — algorithms to debug computational processes
//!
//! A from-scratch Rust reproduction of *BugDoc: Algorithms to Debug
//! Computational Processes* (Lourenço, Freire, Shasha — SIGMOD 2020).
//!
//! Given a black-box computational pipeline — a set of manipulable parameters
//! plus an evaluation procedure that labels each run `succeed` or `fail` —
//! and a provenance log of previously executed instances, BugDoc
//! autonomously executes new instances to find **minimal definitive root
//! causes** of failure: minimal conjunctions of
//! `(parameter, comparator, value)` triples such that every instance
//! satisfying the conjunction fails.
//!
//! ## Quick start
//!
//! ```
//! use bugdoc::prelude::*;
//! use std::sync::Arc;
//!
//! // 1. Describe the parameter space.
//! let space = ParamSpace::builder()
//!     .categorical("dataset", ["iris", "digits"])
//!     .ordinal("library_version", [1, 2])
//!     .build();
//!
//! // 2. Wrap your computation as a black-box pipeline.
//! let version = space.by_name("library_version").unwrap();
//! let pipeline = FnPipeline::new(space.clone(), move |inst: &Instance| {
//!     // ... run the real pipeline; here: version 2 is buggy.
//!     let score = if inst.get(version) == &Value::from(2) { 0.2 } else { 0.9 };
//!     EvalResult::from_score_at_least(score, 0.6)
//! });
//!
//! // 3. Execute a few instances (or seed a pre-existing history).
//! let exec = Executor::new(Arc::new(pipeline), ExecutorConfig::default());
//! for pairs in [("iris", 2), ("digits", 1)] {
//!     let inst = Instance::from_pairs(
//!         &space,
//!         [("dataset", pairs.0.into()), ("library_version", pairs.1.into())],
//!     );
//!     exec.evaluate(&inst).unwrap();
//! }
//!
//! // 4. Diagnose.
//! let diagnosis = diagnose(&exec, &BugDocConfig::default()).unwrap();
//! println!("root causes: {}", diagnosis.causes.display(&space));
//! assert_eq!(diagnosis.causes.len(), 1);
//! ```
//!
//! ## Crate map
//!
//! * [`core`] — parameter spaces, instances, predicates, root causes,
//!   provenance (re-exported at the root).
//! * [`engine`] — the black-box [`Pipeline`](engine::Pipeline) trait and the
//!   caching/budgeted/parallel [`Executor`](engine::Executor).
//! * [`algorithms`] — Shortcut, Stacked Shortcut, Debugging Decision Trees,
//!   and the combined [`diagnose`](algorithms::diagnose) driver.
//! * [`baselines`] — Data X-Ray, Explanation Tables, SMAC, random search.
//! * [`dtree`], [`qm`] — the decision-tree and Quine–McCluskey substrates.
//! * [`store`] — durable provenance: a segmented checksummed write-ahead
//!   log, snapshots, and crash recovery with warm-start diagnosis.
//! * [`serve`] — the diagnosis service daemon (`bugdoc serve`): concurrent
//!   sessions sharing one executor per pipeline spec.
//! * [`telemetry`] — wait-free metrics (counters, gauges, log₂ histograms)
//!   and a flight-recorder ring, rendered as Prometheus text exposition.
//! * [`workflow`] — the dynamic pipeline-execution layer: module DAGs with
//!   swappable, parameterized implementations, plus a real mini-ML substrate.
//! * [`synth`], [`pipelines`], [`eval`] — the paper's benchmark: synthetic
//!   generator with exact ground truth, real-world pipeline simulators, and
//!   the metric/experiment harness.

#![warn(missing_docs)]

pub use bugdoc_algorithms as algorithms;
pub use bugdoc_baselines as baselines;
pub use bugdoc_core as core;
pub use bugdoc_dtree as dtree;
pub use bugdoc_engine as engine;
pub use bugdoc_eval as eval;
pub use bugdoc_pipelines as pipelines;
pub use bugdoc_qm as qm;
pub use bugdoc_serve as serve;
pub use bugdoc_store as store;
pub use bugdoc_synth as synth;
pub use bugdoc_telemetry as telemetry;
pub use bugdoc_workflow as workflow;

/// The types most applications need, in one import.
pub mod prelude {
    pub use bugdoc_algorithms::{
        debugging_decision_trees, diagnose, shortcut, stacked_shortcut, BugDocConfig, DdtConfig,
        DdtMode, Diagnosis, ShortcutConfig, StackedConfig, Strategy,
    };
    pub use bugdoc_core::{
        Comparator, Conjunction, Dnf, Domain, EvalResult, Instance, Outcome, ParamId, ParamSpace,
        Predicate, ProvenanceStore, SupportBounds, Value,
    };
    pub use bugdoc_engine::{
        Executor, ExecutorConfig, FnPipeline, HistoricalPipeline, MemoryBudget, PersistConfig,
        Pipeline, Recovery, SimTime,
    };
}
