//! Differential conformance suite: the provenance store's bitset /
//! dense-key query paths against a naive interpretive oracle.
//!
//! The store answers `support`, `satisfying_runs`, and
//! `succeeding_superset_exists` with word-parallel bit operations over an
//! epoch-segmented index (and, after compaction, dense-key arena scans).
//! Delta-debugging-style systems are only trustworthy when such fast paths
//! are provably equivalent to exact per-run interpretation, so every case
//! here replays a random parameter space and run log through both a
//! [`ProvenanceStore`] and an oracle that re-implements the queries by
//! interpreting each predicate against each recorded instance — including
//! out-of-domain (overflow) instances and post-compaction states.

use bugdoc::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// The naive re-implementation: a flat log interpreted run by run. No
/// bitsets, no dense keys, no epochs — the definition the store must match.
struct Oracle {
    runs: Vec<(Instance, Outcome)>,
}

impl Oracle {
    fn new() -> Self {
        Oracle { runs: Vec::new() }
    }

    /// Dedup by instance value-equality, like the store's `record`.
    fn record(&mut self, instance: Instance, outcome: Outcome) {
        if self.runs.iter().any(|(i, _)| i == &instance) {
            return;
        }
        self.runs.push((instance, outcome));
    }

    fn support(&self, cause: &Conjunction) -> (usize, usize) {
        let mut fail = 0;
        let mut succeed = 0;
        for (inst, outcome) in &self.runs {
            if cause.satisfied_by(inst) {
                match outcome {
                    Outcome::Fail => fail += 1,
                    Outcome::Succeed => succeed += 1,
                }
            }
        }
        (fail, succeed)
    }

    fn satisfying(&self, cause: &Conjunction) -> Vec<&Instance> {
        self.runs
            .iter()
            .filter(|(inst, _)| cause.satisfied_by(inst))
            .map(|(inst, _)| inst)
            .collect()
    }

    fn succeeding_superset_exists(&self, cause: &Conjunction) -> bool {
        self.runs
            .iter()
            .any(|(inst, o)| *o == Outcome::Succeed && cause.satisfied_by(inst))
    }
}

fn random_space(rng: &mut StdRng) -> Arc<ParamSpace> {
    let n_params = rng.gen_range(2..=4usize);
    let mut b = ParamSpace::builder();
    for p in 0..n_params {
        let len = rng.gen_range(2..=5usize);
        b = if rng.gen_range(0..2u32) == 0 {
            b.ordinal(format!("p{p}"), (0..len as i64).collect::<Vec<_>>())
        } else {
            b.categorical(
                format!("p{p}"),
                (0..len).map(|v| format!("v{v}")).collect::<Vec<_>>(),
            )
        };
    }
    b.build()
}

/// Deterministic evaluation, so duplicate draws never violate the store's
/// determinism check (paper §3 Def. 2).
fn outcome_of(inst: &Instance) -> Outcome {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    inst.hash(&mut h);
    Outcome::from_check(h.finish() % 3 != 0)
}

/// A random in-domain instance (dense-encoded by construction).
fn random_instance(space: &Arc<ParamSpace>, rng: &mut StdRng) -> Instance {
    let indices: Vec<u32> = space
        .ids()
        .map(|p| rng.gen_range(0..space.domain(p).len()) as u32)
        .collect();
    space.instance_from_indices(&indices)
}

/// A random instance with one out-of-domain value: unencodable, so it lands
/// on the store's overflow (interpretive) path.
fn random_overflow_instance(space: &Arc<ParamSpace>, rng: &mut StdRng) -> Instance {
    let rogue = rng.gen_range(0..space.len());
    let values: Vec<Value> = space
        .iter()
        .enumerate()
        .map(|(i, (p, _))| {
            if i == rogue {
                Value::from(9_000 + rng.gen_range(0..100i64))
            } else {
                let d = space.domain(p);
                d.value(rng.gen_range(0..d.len())).clone()
            }
        })
        .collect();
    Instance::new(values)
}

fn random_conjunction(space: &Arc<ParamSpace>, rng: &mut StdRng) -> Conjunction {
    let n_preds = rng.gen_range(0..=3usize);
    let preds = (0..n_preds)
        .map(|_| {
            let p = ParamId(rng.gen_range(0..space.len()) as u32);
            let d = space.domain(p);
            let v = d.value(rng.gen_range(0..d.len())).clone();
            let cmp = if d.is_ordinal() {
                Comparator::ALL[rng.gen_range(0..4usize)]
            } else {
                Comparator::CATEGORICAL[rng.gen_range(0..2usize)]
            };
            Predicate::new(p, cmp, v)
        })
        .collect();
    Conjunction::new(preds)
}

/// Checks that the store and the oracle agree on every query for a batch of
/// random conjunctions (plus the empty conjunction, which selects the whole
/// log).
fn assert_conformance(
    store: &ProvenanceStore,
    oracle: &Oracle,
    space: &Arc<ParamSpace>,
    rng: &mut StdRng,
    context: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(store.len(), oracle.runs.len(), "log length ({})", context);
    let mut causes = vec![Conjunction::top()];
    causes.extend((0..20).map(|_| random_conjunction(space, rng)));
    for cause in &causes {
        let shown = cause.display(space).to_string();
        prop_assert_eq!(
            store.support(cause),
            oracle.support(cause),
            "support mismatch for {} ({})",
            shown,
            context
        );
        prop_assert_eq!(
            store.succeeding_superset_exists(cause),
            oracle.succeeding_superset_exists(cause),
            "superset mismatch for {} ({})",
            shown,
            context
        );
        let store_sat: Vec<&Instance> =
            store.satisfying_runs(cause).map(|r| &r.instance).collect();
        prop_assert_eq!(
            store_sat,
            oracle.satisfying(cause),
            "satisfying_runs mismatch for {} ({})",
            shown,
            context
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline property: for any space, any run log (with out-of-domain
    /// instances mixed in), any epoch size, and any compaction schedule, the
    /// bitset path is byte-for-byte the interpretive semantics.
    #[test]
    fn bitset_path_matches_interpretive_oracle(
        seed in any::<u64>(),
        n_runs in 0usize..150,
        overflow_pct in 0u32..25,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let space = random_space(&mut rng);
        let mut store = ProvenanceStore::with_epoch_size(space.clone(), 64);
        let mut oracle = Oracle::new();

        // Replay the log through both, compacting the store mid-stream at a
        // random point (queries must stay exact while recording continues).
        let compact_at = rng.gen_range(0..n_runs.max(1));
        for k in 0..n_runs {
            let inst = if rng.gen_range(0..100u32) < overflow_pct {
                random_overflow_instance(&space, &mut rng)
            } else {
                random_instance(&space, &mut rng)
            };
            let outcome = outcome_of(&inst);
            store.record(inst.clone(), EvalResult::of(outcome));
            oracle.record(inst, outcome);
            if k == compact_at {
                store.compact(rng.gen_range(0..2));
            }
        }
        assert_conformance(&store, &oracle, &space, &mut rng, "mid-compacted")?;

        // Full compaction of every complete epoch, then the same queries.
        let retired = store.compact(0);
        prop_assert!(store.retired_epochs() >= retired);
        assert_conformance(&store, &oracle, &space, &mut rng, "fully compacted")?;

        // And a store that never compacts agrees too (epoch-size default).
        let mut unsegmented = ProvenanceStore::new(space.clone());
        for run in store.runs() {
            unsegmented.record(run.instance.clone(), run.eval);
        }
        assert_conformance(&unsegmented, &oracle, &space, &mut rng, "unbounded")?;
    }

    /// TSV round-trip through compaction: exporting a compacted store and
    /// re-importing it must yield equivalent query results (the run log is
    /// the ground truth compaction keeps).
    #[test]
    fn compacted_store_roundtrips_through_tsv(
        seed in any::<u64>(),
        n_runs in 1usize..120,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let space = random_space(&mut rng);
        let mut store = ProvenanceStore::with_epoch_size(space.clone(), 64);
        for _ in 0..n_runs {
            let inst = random_instance(&space, &mut rng);
            store.record(inst.clone(), EvalResult::of(outcome_of(&inst)));
        }
        store.compact(0);
        let tsv = store.to_tsv();
        let parsed = ProvenanceStore::from_tsv(space.clone(), &tsv)
            .expect("compacted TSV re-imports");
        prop_assert_eq!(parsed.len(), store.len());
        prop_assert_eq!(parsed.to_tsv(), tsv, "second serialization is stable");
        for _ in 0..20 {
            let cause = random_conjunction(&space, &mut rng);
            let shown = cause.display(&space).to_string();
            prop_assert_eq!(
                parsed.support(&cause),
                store.support(&cause),
                "support diverged after round-trip for {}",
                shown
            );
            prop_assert_eq!(
                parsed.succeeding_superset_exists(&cause),
                store.succeeding_superset_exists(&cause),
                "superset diverged after round-trip for {}",
                shown
            );
        }
    }

    /// Parallel epoch fan-out is bit-identical to the sequential path. The
    /// same log is queried through a workers=1 store and a clone with
    /// fan-out forced on (4 workers, threshold 1 epoch), on uncompacted and
    /// compacted states alike — epochs are disjoint word ranges of the
    /// result, so any divergence is a real merge bug, not nondeterminism.
    #[test]
    fn parallel_fan_out_matches_sequential(
        seed in any::<u64>(),
        n_runs in 0usize..220,
        overflow_pct in 0u32..25,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let space = random_space(&mut rng);
        let mut seq = ProvenanceStore::with_epoch_size(space.clone(), 64);
        for _ in 0..n_runs {
            let inst = if rng.gen_range(0..100u32) < overflow_pct {
                random_overflow_instance(&space, &mut rng)
            } else {
                random_instance(&space, &mut rng)
            };
            let outcome = outcome_of(&inst);
            seq.record(inst, EvalResult::of(outcome));
        }
        for compacted in [false, true] {
            if compacted {
                seq.compact(rng.gen_range(0..3usize));
            }
            let mut par = seq.clone();
            par.set_query_workers(4);
            par.set_parallel_epoch_threshold(1);
            let causes: Vec<Conjunction> = (0..12)
                .map(|_| random_conjunction(&space, &mut rng))
                .collect();
            for cause in &causes {
                let shown = cause.display(&space).to_string();
                prop_assert_eq!(
                    par.support(cause),
                    seq.support(cause),
                    "support diverged under fan-out for {} (compacted={})",
                    shown,
                    compacted
                );
                prop_assert_eq!(
                    par.succeeding_superset_exists(cause),
                    seq.succeeding_superset_exists(cause),
                    "superset diverged under fan-out for {} (compacted={})",
                    shown,
                    compacted
                );
                let par_sat: Vec<&Instance> =
                    par.satisfying_runs(cause).map(|r| &r.instance).collect();
                let seq_sat: Vec<&Instance> =
                    seq.satisfying_runs(cause).map(|r| &r.instance).collect();
                prop_assert_eq!(
                    par_sat,
                    seq_sat,
                    "satisfying_runs diverged under fan-out for {} (compacted={})",
                    shown,
                    compacted
                );
            }
            // The batched entry point, on both paths, equals one-at-a-time.
            let individual: Vec<_> = causes.iter().map(|c| seq.support(c)).collect();
            prop_assert_eq!(&par.support_many(&causes), &individual);
            prop_assert_eq!(&seq.support_many(&causes), &individual);
            prop_assert!(
                par.query_counters().0 > 0 || seq.len() < 64,
                "fan-out forced on but never engaged"
            );
        }
    }

    /// PR 7 admissibility contract: for any space, run log (overflow runs
    /// included), and compaction schedule, `support_bounds` brackets the
    /// exact support (`lo ≤ exact ≤ hi`), the batched entry points match the
    /// scalar ones, and every bounds-gated query still returns the exact
    /// interpretive answer — with bounds enabled and disabled alike.
    #[test]
    fn support_bounds_are_admissible_and_gates_stay_exact(
        seed in any::<u64>(),
        n_runs in 0usize..150,
        overflow_pct in 0u32..25,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let space = random_space(&mut rng);
        let mut store = ProvenanceStore::with_epoch_size(space.clone(), 64);
        let mut oracle = Oracle::new();
        let compact_at = rng.gen_range(0..n_runs.max(1));
        for k in 0..n_runs {
            let inst = if rng.gen_range(0..100u32) < overflow_pct {
                random_overflow_instance(&space, &mut rng)
            } else {
                random_instance(&space, &mut rng)
            };
            let outcome = outcome_of(&inst);
            store.record(inst.clone(), EvalResult::of(outcome));
            oracle.record(inst, outcome);
            if k == compact_at {
                store.compact(rng.gen_range(0..2));
            }
        }
        for compacted in [false, true] {
            if compacted {
                store.compact(0);
            }
            let mut causes = vec![Conjunction::top()];
            causes.extend((0..16).map(|_| random_conjunction(&space, &mut rng)));
            let batched = store.support_bounds_many(&causes);
            let supersets = store.succeeding_superset_exists_many(&causes);
            let mut off = store.clone();
            off.set_bounds_enabled(false);
            for (k, cause) in causes.iter().enumerate() {
                let shown = cause.display(&space).to_string();
                let exact = oracle.support(cause);
                let b = store.support_bounds(cause);
                prop_assert!(
                    b.admits(exact),
                    "bounds {:?} exclude exact {:?} for {} (compacted={})",
                    b,
                    exact,
                    shown,
                    compacted
                );
                prop_assert!(
                    b.fail_lo <= b.fail_hi && b.succeed_lo <= b.succeed_hi,
                    "inverted bounds {:?} for {}",
                    b,
                    shown
                );
                prop_assert_eq!(batched[k], b, "batched bounds diverge for {}", &shown);
                prop_assert_eq!(
                    store.support_via_bounds(cause),
                    exact,
                    "support_via_bounds inexact for {}",
                    &shown
                );
                let want_superset = oracle.succeeding_superset_exists(cause);
                prop_assert_eq!(
                    supersets[k],
                    want_superset,
                    "batched superset wrong for {}",
                    &shown
                );
                prop_assert_eq!(
                    store.succeeding_superset_exists(cause),
                    want_superset,
                    "gated superset wrong for {}",
                    &shown
                );
                prop_assert_eq!(
                    off.succeeding_superset_exists(cause),
                    want_superset,
                    "bounds-off superset wrong for {}",
                    &shown
                );
                prop_assert_eq!(
                    off.support_via_bounds(cause),
                    exact,
                    "bounds-off support wrong for {}",
                    &shown
                );
            }
        }
    }
}

/// PR 7 exactness contract end-to-end: every diagnosis algorithm produces a
/// bit-identical report with bound-guided pruning on and off — on the
/// paper's Figure-1 ML pipeline and synthetic single-conjunction pipelines.
/// Pruning may only change *how* an answer is computed, never the answer.
#[test]
fn pruning_matches_unpruned() {
    use bugdoc::algorithms::{
        find_defective_elements, find_defective_elements_bounded, CandidateSetBound,
        CorruptRecordOracle, GroupTestConfig,
    };
    use bugdoc::pipelines::MlPipeline;
    use bugdoc::synth::{CauseScenario, SynthConfig, SyntheticPipeline};

    let exec_with = |bounds: bool, pipe: Arc<dyn Pipeline>, prov: ProvenanceStore| {
        Executor::with_provenance(
            pipe,
            ExecutorConfig {
                bounds,
                ..Default::default()
            },
            prov,
        )
    };

    // Shortcut + Stacked Shortcut on the paper's Figure-1 pipeline.
    let ml = Arc::new(MlPipeline::new());
    let cp_f = ml.instance("Iris", "Gradient Boosting", 2.0);
    let cp_g = ml.instance("Digits", "Decision Tree", 1.0);
    let mut shortcut_reports = Vec::new();
    let mut stacked_reports = Vec::new();
    for bounds in [true, false] {
        let exec = exec_with(bounds, ml.clone(), ml.table1_history());
        shortcut_reports
            .push(shortcut(&exec, &cp_f, &cp_g, &ShortcutConfig::default()).unwrap());
        let exec = exec_with(bounds, ml.clone(), ml.table1_history());
        stacked_reports.push(stacked_shortcut(&exec, &StackedConfig::default()).unwrap());
    }
    assert_eq!(
        shortcut_reports[0], shortcut_reports[1],
        "Shortcut diverged under pruning"
    );
    assert_eq!(
        stacked_reports[0], stacked_reports[1],
        "Stacked Shortcut diverged under pruning"
    );

    // DDT on synthetic pipelines across seeds and modes; a small epoch size
    // exercises the frozen-epoch count tables, not just the tail.
    let mut bounds_engaged = 0u64;
    for seed in [11u64, 23, 47] {
        let pipe = Arc::new(SyntheticPipeline::generate(
            &SynthConfig {
                scenario: CauseScenario::SingleConjunction,
                n_params: (4, 5),
                n_values: (3, 5),
                ..SynthConfig::default()
            },
            seed,
        ));
        for mode in [DdtMode::FindOne, DdtMode::FindAll] {
            let mut reports = Vec::new();
            for bounds in [true, false] {
                let seeds = pipe.seed_history(2, 6, 7);
                let mut prov =
                    ProvenanceStore::with_epoch_size(Pipeline::space(pipe.as_ref()).clone(), 64);
                for (inst, eval) in &seeds {
                    prov.record(inst.clone(), *eval);
                }
                let exec = exec_with(bounds, pipe.clone() as Arc<dyn Pipeline>, prov);
                let config = DdtConfig {
                    mode,
                    ..DdtConfig::default()
                };
                reports.push(debugging_decision_trees(&exec, &config).unwrap());
                if bounds {
                    let stats = exec.stats();
                    bounds_engaged += stats.bounds_short_circuits + stats.bounds_pruned_subtrees;
                }
            }
            assert_eq!(
                reports[0], reports[1],
                "DDT diverged under pruning (seed={seed}, mode={mode:?})"
            );
        }
    }
    assert!(
        bounds_engaged > 0,
        "differential is vacuous: bounds never decided a query"
    );

    // Group testing: an admissible candidate-superset bound never changes
    // the identified defective set.
    let corrupt = [5usize, 17, 40];
    let mut plain_oracle = CorruptRecordOracle::new(corrupt);
    let plain = find_defective_elements(64, &mut plain_oracle, &GroupTestConfig::default());
    let mut oracle = CorruptRecordOracle::new(corrupt);
    let bound = CandidateSetBound::new([5usize, 9, 17, 40, 41]);
    let bounded =
        find_defective_elements_bounded(64, &mut oracle, &bound, &GroupTestConfig::default());
    assert_eq!(
        bounded.defective, plain.defective,
        "group testing diverged under pruning"
    );
    assert!(bounded.tests_used <= plain.tests_used);
    assert!(bounded.pruned_tests > 0, "candidate bound pruned nothing");
}
