//! Memory-bounded mode end to end: with the read cache budgeted at 25% of
//! the pipeline's working set, every diagnosis strategy must produce
//! *bit-identical* results to the unbounded run — same causes, same number
//! of new executions — on the paper-example pipelines. Eviction may only
//! cost memory and latency, never answers or budget.

use bugdoc::pipelines::{EnterpriseAnalyticsPipeline, MlPipeline};
use bugdoc::prelude::*;
use std::sync::Arc;

/// Runs `diagnose` twice — unbounded and with a cache budgeted at
/// `budget_pct`% of the space — and asserts identical output.
fn assert_bounded_matches_unbounded(
    make_pipeline: impl Fn() -> Arc<dyn Pipeline>,
    seed_history: impl Fn(&Arc<dyn Pipeline>) -> ProvenanceStore,
    strategy: Strategy,
    budget_pct: usize,
) {
    let run = |memory: MemoryBudget| {
        let pipeline = make_pipeline();
        let prov = seed_history(&pipeline);
        let seeded = prov.len();
        let exec = Executor::with_provenance(
            pipeline.clone(),
            ExecutorConfig {
                workers: 5,
                budget: None,
                memory,
                ..Default::default()
            },
            prov,
        );
        let config = BugDocConfig {
            strategy,
            ..Default::default()
        };
        let diagnosis = diagnose(&exec, &config).unwrap();
        let stats = exec.stats();
        assert_eq!(
            stats.new_executions,
            exec.provenance().len() - seeded,
            "execution accounting must stay exact ({memory:?})"
        );
        (diagnosis.causes, diagnosis.new_executions, stats.evictions)
    };

    let pipeline = make_pipeline();
    let working_set = pipeline.space().total_configurations() as usize;
    let budget = (working_set * budget_pct / 100).max(1);

    let (unbounded_causes, unbounded_execs, no_evictions) = run(MemoryBudget::Unbounded);
    assert_eq!(no_evictions, 0);
    let (bounded_causes, bounded_execs, _) = run(MemoryBudget::Entries(budget));

    assert_eq!(
        bounded_causes,
        unbounded_causes,
        "diagnosis diverged under a {budget_pct}% cache budget ({strategy:?})"
    );
    assert_eq!(
        bounded_execs, unbounded_execs,
        "execution count diverged under a {budget_pct}% cache budget ({strategy:?})"
    );
}

#[test]
fn ml_pipeline_diagnosis_identical_at_quarter_budget() {
    for strategy in [
        Strategy::Combined,
        Strategy::StackedShortcutOnly,
        Strategy::DdtOnly,
    ] {
        assert_bounded_matches_unbounded(
            || Arc::new(MlPipeline::new()) as Arc<dyn Pipeline>,
            |p| {
                let ml = MlPipeline::new();
                let mut prov = ml.table1_history();
                // Figure 1's gradient-boosting run completes the history the
                // combined driver needs to see both causes.
                prov.record(
                    ml.instance("Digits", "Gradient Boosting", 1.0),
                    p.execute(&ml.instance("Digits", "Gradient Boosting", 1.0))
                        .unwrap(),
                );
                prov
            },
            strategy,
            25,
        );
    }
}

#[test]
fn enterprise_pipeline_diagnosis_identical_at_quarter_budget() {
    for strategy in [Strategy::Combined, Strategy::DdtOnly] {
        assert_bounded_matches_unbounded(
            || Arc::new(EnterpriseAnalyticsPipeline::new()) as Arc<dyn Pipeline>,
            |p| {
                let space = p.space().clone();
                let mut prov = ProvenanceStore::new(space.clone());
                // Seed one failing and one succeeding run so every strategy
                // has a CP_f to start from, deterministically.
                let mut failing = None;
                let mut succeeding = None;
                for inst in space.instances() {
                    let eval = p.execute(&inst).unwrap();
                    match eval.outcome {
                        Outcome::Fail if failing.is_none() => failing = Some((inst, eval)),
                        Outcome::Succeed if succeeding.is_none() => {
                            succeeding = Some((inst, eval))
                        }
                        _ => {}
                    }
                    if failing.is_some() && succeeding.is_some() {
                        break;
                    }
                }
                for (inst, eval) in [failing.unwrap(), succeeding.unwrap()] {
                    prov.record(inst, eval);
                }
                prov
            },
            strategy,
            25,
        );
    }
}
