//! Integration tests reproducing the paper's worked examples end-to-end,
//! across crates: core model + engine + algorithms + pipelines.

use bugdoc::pipelines::{
    DataPolygamyPipeline, EnterpriseAnalyticsPipeline, GanPipeline, MlPipeline, SupernovaPipeline,
};
use bugdoc::prelude::*;
use std::sync::Arc;

/// Paper §4.1, Example 1: the full Shortcut walk over the Figure-1 pipeline
/// reproduces Table 2 and asserts Library Version = 2.
#[test]
fn example1_shortcut_full_walk() {
    let pipeline = Arc::new(MlPipeline::new());
    let space = pipeline.space().clone();
    let exec = Executor::with_provenance(
        pipeline.clone() as Arc<dyn Pipeline>,
        ExecutorConfig::default(),
        pipeline.table1_history(),
    );
    let cp_f = pipeline.instance("Iris", "Gradient Boosting", 2.0);
    let cp_g = pipeline.instance("Digits", "Decision Tree", 1.0);

    let report = shortcut(&exec, &cp_f, &cp_g, &ShortcutConfig::default()).unwrap();
    let cause = report.cause.expect("Example 1 asserts a cause");
    let v = space.by_name("Library Version").unwrap();
    assert_eq!(
        cause.canonicalize(&space),
        Conjunction::new(vec![Predicate::new(v, Comparator::Eq, 2.0)]).canonicalize(&space)
    );

    // Table 2's new rows, with the paper's scores.
    let prov = exec.provenance();
    let expect = [
        ("Digits", "Gradient Boosting", 2.0, 0.2, Outcome::Fail),
        ("Digits", "Decision Tree", 2.0, 0.3, Outcome::Fail),
        ("Digits", "Decision Tree", 1.0, 0.8, Outcome::Succeed),
    ];
    for (d, e, ver, score, outcome) in expect {
        let inst = pipeline.instance(d, e, ver);
        let eval = prov.lookup(&inst).expect("instance in Table 2");
        assert_eq!(eval.outcome, outcome);
        assert_eq!(eval.score, Some(score));
    }
}

/// The combined driver on the Figure-1 pipeline finds *both* planted causes
/// once the provenance includes Figure 1's gradient-boosting run.
#[test]
fn figure1_combined_diagnosis_finds_both_causes() {
    let pipeline = Arc::new(MlPipeline::new());
    let space = pipeline.space().clone();
    let exec = Executor::with_provenance(
        pipeline.clone() as Arc<dyn Pipeline>,
        ExecutorConfig::default(),
        pipeline.table1_history(),
    );
    exec.evaluate(&pipeline.instance("Digits", "Gradient Boosting", 1.0))
        .unwrap();

    let diagnosis = diagnose(&exec, &BugDocConfig::default()).unwrap();
    let truth = pipeline.truth();
    let exact = diagnosis
        .causes
        .conjuncts()
        .iter()
        .filter(|c| truth.matches_minimal(&space, c))
        .count();
    assert_eq!(
        exact,
        2,
        "expected both causes; got {}",
        diagnosis.causes.display(&space)
    );
}

/// The intro's enterprise-analytics anecdote: the data-feed change is found.
#[test]
fn intro_enterprise_analytics_diagnosis() {
    let pipeline = Arc::new(EnterpriseAnalyticsPipeline::new());
    let space = pipeline.space().clone();
    let truth = pipeline.truth().clone();
    let exec = Executor::new(
        pipeline.clone() as Arc<dyn Pipeline>,
        ExecutorConfig::default(),
    );
    // One bad production run plus one good historical run.
    let bad = Instance::from_pairs(
        &space,
        [
            ("data_provider", "acme_feed".into()),
            ("feed_resolution", "weekly".into()),
            ("forecast_model", "prophet".into()),
            ("feature_window_months", 12.into()),
            ("seasonality", "additive".into()),
        ],
    );
    let good = Instance::from_pairs(
        &space,
        [
            ("data_provider", "internal".into()),
            ("feed_resolution", "monthly".into()),
            ("forecast_model", "arima".into()),
            ("feature_window_months", 6.into()),
            ("seasonality", "none".into()),
        ],
    );
    exec.evaluate(&bad).unwrap();
    exec.evaluate(&good).unwrap();

    let diagnosis = diagnose(&exec, &BugDocConfig::default()).unwrap();
    assert!(
        diagnosis
            .causes
            .conjuncts()
            .iter()
            .any(|c| truth.matches_minimal(&space, c)),
        "got {}",
        diagnosis.causes.display(&space)
    );
}

/// The intro's supernova anecdote: the version regression is found even
/// without a disjoint good run (most-different heuristic).
#[test]
fn intro_supernova_version_bug() {
    let pipeline = Arc::new(SupernovaPipeline::new());
    let space = pipeline.space().clone();
    let truth = pipeline.truth().clone();
    let exec = Executor::new(
        pipeline.clone() as Arc<dyn Pipeline>,
        ExecutorConfig::default(),
    );
    let bad = Instance::from_pairs(
        &space,
        [
            ("telescope_site", "cerro_tololo".into()),
            ("processing_version", 40.into()),
            ("calibration", "extended".into()),
            ("detector_band", "i".into()),
            ("coadd_depth", 5.into()),
        ],
    );
    // Shares the site and depth with the bad run: not disjoint.
    let good = Instance::from_pairs(
        &space,
        [
            ("telescope_site", "cerro_tololo".into()),
            ("processing_version", 32.into()),
            ("calibration", "standard".into()),
            ("detector_band", "r".into()),
            ("coadd_depth", 5.into()),
        ],
    );
    exec.evaluate(&bad).unwrap();
    exec.evaluate(&good).unwrap();

    let diagnosis = diagnose(&exec, &BugDocConfig::default()).unwrap();
    assert!(
        diagnosis
            .causes
            .conjuncts()
            .iter()
            .any(|c| truth.matches_minimal(&space, c)),
        "got {}",
        diagnosis.causes.display(&space)
    );
}

/// Data Polygamy: all three planted crash conditions are recoverable.
#[test]
fn data_polygamy_three_crash_causes() {
    let pipeline = Arc::new(DataPolygamyPipeline::new());
    let space = pipeline.space().clone();
    let truth = pipeline.truth().clone();
    let exec = Executor::new(
        pipeline.clone() as Arc<dyn Pipeline>,
        ExecutorConfig::default(),
    );
    // Seed one failing run per crash condition plus several good runs.
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
    for k in 0..truth.len() {
        let inst = truth.sample_failing_cause(&space, k, &mut rng).unwrap();
        exec.evaluate(&inst).unwrap();
    }
    for _ in 0..8 {
        let inst = truth.sample_succeeding(&space, &mut rng).unwrap();
        exec.evaluate(&inst).unwrap();
    }

    let diagnosis = diagnose(
        &exec,
        &BugDocConfig {
            ddt: DdtConfig {
                mode: DdtMode::FindAll,
                verification_samples: 12,
                seed: 5,
                ..DdtConfig::default()
            },
            ..BugDocConfig::default()
        },
    )
    .unwrap();
    let exact = diagnosis
        .causes
        .conjuncts()
        .iter()
        .filter(|c| truth.matches_minimal(&space, c))
        .count();
    assert!(
        exact >= 2,
        "expected most crash causes; got {}",
        diagnosis.causes.display(&space)
    );
}

/// GAN training: both mode-collapse regimes are recoverable and every
/// asserted cause is genuinely definitive.
#[test]
fn gan_mode_collapse_causes_are_definitive() {
    let pipeline = Arc::new(GanPipeline::new());
    let space = pipeline.space().clone();
    let truth = pipeline.truth().clone();
    let exec = Executor::new(
        pipeline.clone() as Arc<dyn Pipeline>,
        ExecutorConfig::default(),
    );
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(11);
    for k in 0..truth.len() {
        for _ in 0..2 {
            let inst = truth.sample_failing_cause(&space, k, &mut rng).unwrap();
            let _ = exec.evaluate(&inst);
        }
    }
    for _ in 0..8 {
        let inst = truth.sample_succeeding(&space, &mut rng).unwrap();
        let _ = exec.evaluate(&inst);
    }
    let diagnosis = diagnose(&exec, &BugDocConfig::default()).unwrap();
    assert!(!diagnosis.causes.is_empty());
    for cause in diagnosis.causes.conjuncts() {
        assert!(
            truth.is_definitive(&space, cause),
            "non-definitive assertion {}",
            cause.display(&space)
        );
    }
}
