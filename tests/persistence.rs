//! Crash-recovery conformance for durable provenance.
//!
//! The guarantees under test, end to end:
//!
//! * **Exact prefix** — truncating the WAL at *any* byte offset (the
//!   crash/bitrot model) and recovering yields exactly the runs whose
//!   frames ended at or before the cut: never a panic, never a phantom or
//!   altered run, never a lost earlier run (proptest over random spaces,
//!   run logs with overflow instances mixed in, and cut points).
//! * **Kill-and-reopen** — an executor killed with a garbage half-frame on
//!   its WAL tail reopens warm with every completed run intact.
//! * **Bit-identical resumed diagnosis** — on the paper pipelines, a
//!   diagnosis run with persistence on, killed mid-run (budget-starved or
//!   tail-truncated) and resumed, asserts exactly the same root causes as
//!   an uninterrupted in-memory run.

use bugdoc::pipelines::MlPipeline;
use bugdoc::prelude::*;
use bugdoc::store::{DurableStore, WalPosition};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "bugdoc-persistence-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn random_space(rng: &mut StdRng) -> Arc<ParamSpace> {
    let n_params = rng.gen_range(2..=4usize);
    let mut b = ParamSpace::builder();
    for p in 0..n_params {
        let len = rng.gen_range(2..=5usize);
        b = if rng.gen_range(0..2u32) == 0 {
            b.ordinal(format!("p{p}"), (0..len as i64).collect::<Vec<_>>())
        } else {
            b.categorical(
                format!("p{p}"),
                (0..len).map(|v| format!("v{v}")).collect::<Vec<_>>(),
            )
        };
    }
    b.build()
}

/// Deterministic outcome so duplicate draws never trip the determinism check.
fn outcome_of(inst: &Instance) -> Outcome {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    inst.hash(&mut h);
    Outcome::from_check(h.finish() % 3 != 0)
}

fn random_instance(space: &Arc<ParamSpace>, rng: &mut StdRng) -> Instance {
    let indices: Vec<u32> = space
        .ids()
        .map(|p| rng.gen_range(0..space.domain(p).len()) as u32)
        .collect();
    space.instance_from_indices(&indices)
}

/// An instance with one out-of-domain value: persisted as a raw frame and
/// recovered through the provenance store's overflow path.
fn random_overflow_instance(space: &Arc<ParamSpace>, rng: &mut StdRng) -> Instance {
    let rogue = rng.gen_range(0..space.len());
    let values: Vec<Value> = space
        .iter()
        .enumerate()
        .map(|(i, (p, _))| {
            if i == rogue {
                Value::from(9_000 + rng.gen_range(0..100i64))
            } else {
                let d = space.domain(p);
                d.value(rng.gen_range(0..d.len())).clone()
            }
        })
        .collect();
    Instance::new(values)
}

/// The WAL segment files of `dir` with their byte sizes, in log order.
fn segment_files(dir: &Path) -> Vec<(PathBuf, u64)> {
    let mut files: Vec<(u64, PathBuf)> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter_map(|p| {
            let name = p.file_name()?.to_str()?;
            let idx: u64 = name.strip_prefix("wal-")?.strip_suffix(".seg")?.parse().ok()?;
            Some((idx, p))
        })
        .collect();
    files.sort();
    files
        .into_iter()
        .map(|(_, p)| {
            let len = std::fs::metadata(&p).unwrap().len();
            (p, len)
        })
        .collect()
}

/// Truncates the log — viewed as the concatenation of its segments — at
/// global byte offset `cut`: the segment containing the cut is `set_len`,
/// every later segment is deleted (what a crash plus recovery's own
/// truncation may leave behind; here we do the damage, recovery must cope).
fn truncate_log_at(dir: &Path, mut cut: u64) {
    let files = segment_files(dir);
    let mut chopping = false;
    for (path, len) in files {
        if chopping {
            std::fs::remove_file(&path).unwrap();
            continue;
        }
        if cut >= len {
            cut -= len;
            continue;
        }
        if cut == 0 {
            std::fs::remove_file(&path).unwrap();
        } else {
            std::fs::OpenOptions::new()
                .write(true)
                .open(&path)
                .unwrap()
                .set_len(cut)
                .unwrap();
        }
        chopping = true;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Truncate the WAL at an arbitrary byte offset: recovery must yield an
    /// exact prefix of the recorded runs — never a panic, never a phantom
    /// run, and every run whose frame ended at or before the cut survives.
    #[test]
    fn truncated_wal_recovers_exact_prefix(
        seed in any::<u64>(),
        n_runs in 1usize..80,
        cut_selector in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let space = random_space(&mut rng);
        let dir = tmp_dir(&format!("prefix-{seed}-{n_runs}"));
        let config = PersistConfig {
            segment_bytes: 192, // tiny: most cases span several segments
            ..PersistConfig::new(&dir)
        };

        let (mut live, mut durable, _) = DurableStore::open(&space, &config).unwrap();
        // Record a random log (≈12% out-of-domain), tracking each record's
        // exclusive end position in the WAL.
        let mut ends: Vec<WalPosition> = Vec::new();
        for _ in 0..n_runs {
            let inst = if rng.gen_range(0..100) < 12 {
                random_overflow_instance(&space, &mut rng)
            } else {
                random_instance(&space, &mut rng)
            };
            let eval = EvalResult::of(outcome_of(&inst));
            if live.record(inst.clone(), eval) {
                let run = live.runs().last().unwrap();
                durable.append(run, &space).unwrap();
                ends.push(durable.position());
            }
        }
        drop(durable);
        let original: Vec<_> = live.runs().to_vec();
        prop_assert_eq!(ends.len(), original.len());

        // Segment sizes at rest → each record's global end offset.
        let files = segment_files(&dir);
        let seg_index = |path: &Path| -> u64 {
            let name = path.file_name().unwrap().to_str().unwrap();
            name.strip_prefix("wal-").unwrap().strip_suffix(".seg").unwrap().parse().unwrap()
        };
        let global = |p: &WalPosition| -> u64 {
            let mut base = 0;
            for (path, len) in &files {
                if seg_index(path) < p.segment {
                    base += len;
                }
            }
            base + p.offset
        };
        let total: u64 = files.iter().map(|(_, l)| l).sum();
        let cut = cut_selector % (total + 1);
        let expected = ends.iter().filter(|p| global(p) <= cut).count();

        truncate_log_at(&dir, cut);

        let (recovered, _, recovery) = DurableStore::open(&space, &config).unwrap();
        prop_assert_eq!(recovered.len(), expected, "cut at {} of {}", cut, total);
        prop_assert_eq!(recovery.runs, expected);
        for (got, want) in recovered.runs().iter().zip(&original) {
            prop_assert_eq!(&got.instance, &want.instance);
            prop_assert_eq!(got.eval.outcome, want.eval.outcome);
            prop_assert_eq!(got.eval.score, want.eval.score);
        }
        // Recovery's own truncation is final: a second open is clean and
        // byte-identical.
        let (again, _, second) = DurableStore::open(&space, &config).unwrap();
        prop_assert_eq!(again.len(), expected);
        prop_assert_eq!(second.truncated_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Kill-and-reopen through the executor: a run killed with a half-written
/// frame on the WAL tail reopens with every completed run intact and the
/// garbage discarded.
#[test]
fn killed_executor_reopens_with_completed_runs() {
    let dir = tmp_dir("kill");
    let space = ParamSpace::builder()
        .ordinal("x", (0..6).collect::<Vec<_>>())
        .ordinal("y", (0..6).collect::<Vec<_>>())
        .build();
    let x = space.by_name("x").unwrap();
    let make_pipeline = {
        let space = space.clone();
        move || {
            let x = space.by_name("x").unwrap();
            Arc::new(FnPipeline::new(space.clone(), move |i: &Instance| {
                EvalResult::of(Outcome::from_check(i.get(x) != &Value::from(3)))
            })) as Arc<dyn Pipeline>
        }
    };
    let config = || ExecutorConfig {
        workers: 3,
        persist: Some(PersistConfig {
            snapshot_every: Some(10),
            ..PersistConfig::new(&dir)
        }),
        ..Default::default()
    };

    let exec = Executor::new(make_pipeline(), config());
    let all: Vec<Instance> = space.instances().collect();
    exec.evaluate_batch(&all);
    assert_eq!(exec.stats().new_executions, 36);
    drop(exec); // the "kill": no shutdown hook exists, nothing to flush

    // Simulate the torn half-frame a mid-write kill leaves behind.
    let (last_segment, _) = segment_files(&dir).pop().unwrap();
    let mut bytes = std::fs::read(&last_segment).unwrap();
    bytes.extend_from_slice(&[0x17, 0xFF, 0x03, 0x00, 0xAB]);
    std::fs::write(&last_segment, &bytes).unwrap();

    let exec = Executor::new(make_pipeline(), config());
    let recovery = exec.recovery().unwrap();
    assert_eq!(recovery.runs, 36, "every completed run survives the kill");
    assert!(recovery.truncated_bytes >= 5, "the garbage tail was discarded");
    for inst in &all {
        let expected = Outcome::from_check(inst.get(x) != &Value::from(3));
        assert_eq!(exec.evaluate(inst), Ok(expected));
    }
    assert_eq!(exec.stats().new_executions, 0);
    assert_eq!(exec.stats().cache_hits, 36);
    std::fs::remove_dir_all(&dir).ok();
}

/// Runs `diagnose` on the ML paper pipeline and returns the causes plus the
/// executor's final provenance length.
fn ml_diagnosis(persist: Option<PersistConfig>, budget: Option<usize>) -> (Dnf, usize) {
    let pipeline = Arc::new(MlPipeline::new());
    let mut prov = pipeline.table1_history();
    let gb = pipeline.instance("Digits", "Gradient Boosting", 1.0);
    prov.record(
        gb.clone(),
        bugdoc::engine::Pipeline::execute(pipeline.as_ref(), &gb).unwrap(),
    );
    let exec = Executor::with_provenance(
        pipeline as Arc<dyn Pipeline>,
        ExecutorConfig {
            workers: 5,
            budget,
            persist,
            ..Default::default()
        },
        prov,
    );
    let diagnosis = diagnose(&exec, &BugDocConfig::default()).unwrap();
    (diagnosis.causes, exec.provenance().len())
}

/// The acceptance property: a diagnosis with `persist_dir` set, killed
/// mid-run and resumed, asserts bit-identical root causes to an
/// uninterrupted, purely in-memory run on the paper pipeline.
#[test]
fn resumed_diagnosis_is_bit_identical_to_in_memory() {
    let (reference, _) = ml_diagnosis(None, None);
    assert!(!reference.is_empty(), "the ML pipeline has known root causes");

    // Kill model 1: budget starvation — the first run stops mid-search
    // after 2 new executions, leaving a short WAL.
    let dir = tmp_dir("resume-budget");
    let persist = || {
        Some(PersistConfig {
            snapshot_every: Some(4),
            ..PersistConfig::new(&dir)
        })
    };
    let (_, partial_runs) = ml_diagnosis(persist(), Some(2));
    let (resumed, _) = ml_diagnosis(persist(), None);
    assert!(partial_runs > 0);
    assert_eq!(
        resumed, reference,
        "budget-starved then resumed diagnosis diverged from in-memory"
    );
    std::fs::remove_dir_all(&dir).ok();

    // Kill model 2: a full run whose WAL tail is then torn off at an
    // arbitrary offset (mid-frame), leaving a strict prefix to resume from.
    let dir = tmp_dir("resume-torn");
    let persist = || {
        Some(PersistConfig {
            snapshot_every: Some(1_000_000), // no snapshot: the cut bites
            ..PersistConfig::new(&dir)
        })
    };
    let (first, _) = ml_diagnosis(persist(), None);
    assert_eq!(first, reference);
    let total: u64 = segment_files(&dir).iter().map(|(_, l)| l).sum();
    truncate_log_at(&dir, total * 2 / 3 + 1);
    let (resumed, _) = ml_diagnosis(persist(), None);
    assert_eq!(
        resumed, reference,
        "torn-tail resumed diagnosis diverged from in-memory"
    );
    std::fs::remove_dir_all(&dir).ok();
}
