//! Property-based tests on the core invariants, spanning crates:
//! Quine–McCluskey semantic equivalence, canonical-form round-trips,
//! Shortcut's Theorem-2 guarantee, executor batch/sequential agreement,
//! and metric formula consistency.

// Selective import: `bugdoc::prelude::Strategy` (the driver enum) would
// shadow proptest's `Strategy` trait under a glob.
use bugdoc::prelude::{
    shortcut, Comparator, Conjunction, Dnf, EvalResult, Executor, ExecutorConfig, FnPipeline,
    Instance, Outcome, ParamId, ParamSpace, Pipeline, Predicate, ShortcutConfig,
};
use bugdoc::qm;
use bugdoc::synth::Truth;
use proptest::prelude::*;
use std::sync::Arc;

/// A small random space: 2–4 parameters, 2–5 values, mixed kinds.
fn arb_space() -> impl Strategy<Value = Arc<ParamSpace>> {
    proptest::collection::vec((2usize..=5, any::<bool>()), 2..=4).prop_map(|params| {
        let mut builder = ParamSpace::builder();
        for (i, (n_values, ordinal)) in params.into_iter().enumerate() {
            if ordinal {
                builder = builder.ordinal(
                    format!("p{i}"),
                    (0..n_values as i64).collect::<Vec<_>>(),
                );
            } else {
                builder = builder.categorical(
                    format!("p{i}"),
                    (0..n_values).map(|v| format!("v{v}")).collect::<Vec<_>>(),
                );
            }
        }
        builder.build()
    })
}

/// A random predicate over a space (comparators restricted to the domain
/// kind, values drawn from the domain).
fn arb_predicate(space: Arc<ParamSpace>) -> impl Strategy<Value = Predicate> {
    let n_params = space.len();
    (0..n_params, 0usize..8, 0usize..4).prop_map(move |(p, v_idx, c_idx)| {
        let p = ParamId(p as u32);
        let domain = space.domain(p);
        let value = domain.value(v_idx % domain.len()).clone();
        let cmp = if domain.is_ordinal() {
            Comparator::ALL[c_idx]
        } else {
            Comparator::CATEGORICAL[c_idx % 2]
        };
        Predicate::new(p, cmp, value)
    })
}

fn arb_dnf(space: Arc<ParamSpace>) -> impl Strategy<Value = Dnf> {
    let pred = arb_predicate(space);
    proptest::collection::vec(proptest::collection::vec(pred, 1..=3), 1..=3)
        .prop_map(|conjs| Dnf::new(conjs.into_iter().map(Conjunction::new).collect()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// QM minimization preserves the denoted instance set exactly.
    #[test]
    fn qm_minimize_preserves_semantics(
        (space, dnf) in arb_space().prop_flat_map(|s| {
            let dnf = arb_dnf(s.clone());
            (Just(s), dnf)
        })
    ) {
        let minimized = qm::minimize_dnf(&space, &dnf);
        for inst in space.instances() {
            prop_assert_eq!(
                dnf.satisfied_by(&inst),
                minimized.satisfied_by(&inst),
                "disagree on {}: {} vs {}",
                inst.display(&space),
                dnf.display(&space),
                minimized.display(&space)
            );
        }
        // And it never grows the conjunct count.
        prop_assert!(minimized.len() <= dnf.len().max(1));
    }

    /// Canonical form round-trips: canonicalize → to_conjunction denotes the
    /// same set, and re-canonicalizing is a fixpoint.
    #[test]
    fn canonical_roundtrip_fixpoint(
        (space, preds) in arb_space().prop_flat_map(|s| {
            let preds = proptest::collection::vec(arb_predicate(s.clone()), 1..=4);
            (Just(s), preds)
        })
    ) {
        let conj = Conjunction::new(preds);
        let canon = conj.canonicalize(&space);
        let round = canon.to_conjunction(&space);
        prop_assert_eq!(round.canonicalize(&space), canon.clone());
        for inst in space.instances() {
            prop_assert_eq!(
                conj.satisfied_by(&inst),
                canon.satisfied_by(&inst, &space)
            );
        }
    }

    /// Canonical implication agrees with brute-force set inclusion.
    #[test]
    fn implication_agrees_with_enumeration(
        (space, a, b) in arb_space().prop_flat_map(|s| {
            let pa = proptest::collection::vec(arb_predicate(s.clone()), 1..=3);
            let pb = proptest::collection::vec(arb_predicate(s.clone()), 1..=3);
            (Just(s), pa, pb)
        })
    ) {
        let ca = Conjunction::new(a).canonicalize(&space);
        let cb = Conjunction::new(b).canonicalize(&space);
        let brute = space
            .instances()
            .all(|i| !ca.satisfied_by(&i, &space) || cb.satisfied_by(&i, &space));
        prop_assert_eq!(ca.implies(&cb), brute);
    }

    /// Truth::is_definitive agrees with brute-force enumeration.
    #[test]
    fn definitive_test_agrees_with_enumeration(
        (space, dnf, preds) in arb_space().prop_flat_map(|s| {
            let dnf = arb_dnf(s.clone());
            let preds = proptest::collection::vec(arb_predicate(s.clone()), 1..=3);
            (Just(s), dnf, preds)
        })
    ) {
        let truth = Truth::new(&space, dnf);
        let cause = Conjunction::new(preds);
        let canon = cause.canonicalize(&space);
        if canon.is_unsatisfiable() {
            prop_assert!(!truth.is_definitive(&space, &cause));
        } else {
            let brute = space
                .instances()
                .filter(|i| cause.satisfied_by(i))
                .all(|i| truth.fails(&i));
            prop_assert_eq!(truth.is_definitive(&space, &cause), brute);
        }
    }

    /// Theorem 2: under the Disjointness Condition, Shortcut never asserts a
    /// strict semantic superset of the failing instance's own region... more
    /// precisely, the asserted D is always a subset of CP_f's pairs and
    /// never contains a pair whose removal provably preserved failure.
    /// Checked operationally: D ⊆ CP_f and D is satisfied by CP_f.
    #[test]
    fn shortcut_asserts_subset_of_cpf(
        (space, dnf) in arb_space().prop_flat_map(|s| {
            let dnf = arb_dnf(s.clone());
            (Just(s), dnf)
        })
    ) {
        let truth = Truth::new(&space, dnf);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
        let (Some(cp_f), Some(cp_g)) = (
            truth.sample_failing(&space, &mut rng),
            truth.sample_succeeding(&space, &mut rng),
        ) else {
            return Ok(()); // degenerate truth: nothing to test
        };
        // Enforce disjointness; skip if this pair isn't.
        if !cp_f.is_disjoint_from(&cp_g) {
            return Ok(());
        }
        let t = truth.clone();
        let pipeline = FnPipeline::new(space.clone(), move |i: &Instance| {
            EvalResult::of(Outcome::from_check(!t.fails(i)))
        });
        let exec = Executor::new(Arc::new(pipeline), ExecutorConfig::default());
        let report = shortcut(&exec, &cp_f, &cp_g, &ShortcutConfig::default()).unwrap();
        if let Some(cause) = report.cause {
            prop_assert!(cause.satisfied_by(&cp_f), "D must be a subset of CP_f");
            // Theorem 2 (never a superset of a minimal cause) in its
            // checkable form: no proper sub-conjunction of an actual minimal
            // cause strictly contains D's region... equivalently D never
            // strictly implies-and-extends a planted cause that CP_f
            // satisfies with extra parameters CP_g shares. Operationally:
            // every pair in D comes from CP_f.
            for pred in cause.predicates() {
                prop_assert_eq!(pred.cmp, Comparator::Eq);
                prop_assert_eq!(&pred.value, cp_f.get(pred.param));
            }
        }
    }

    /// Executor: batch evaluation agrees with sequential evaluation and
    /// records the same provenance set.
    #[test]
    fn batch_matches_sequential(
        (space, dnf) in arb_space().prop_flat_map(|s| {
            let dnf = arb_dnf(s.clone());
            (Just(s), dnf)
        })
    ) {
        let truth = Truth::new(&space, dnf);
        let instances: Vec<Instance> = space.instances().take(16).collect();
        let mk = || {
            let t = truth.clone();
            let pipeline = FnPipeline::new(space.clone(), move |i: &Instance| {
                EvalResult::of(Outcome::from_check(!t.fails(i)))
            });
            Executor::new(
                Arc::new(pipeline) as Arc<dyn Pipeline>,
                ExecutorConfig { workers: 4, budget: None, ..Default::default() },
            )
        };
        let batch_exec = mk();
        let seq_exec = mk();
        let batch_results = batch_exec.evaluate_batch(&instances);
        let seq_results: Vec<_> = instances.iter().map(|i| seq_exec.evaluate(i)).collect();
        prop_assert_eq!(batch_results, seq_results);
        prop_assert_eq!(
            batch_exec.provenance().len(),
            seq_exec.provenance().len()
        );
    }
}

mod stacked_properties {
    use bugdoc::prelude::{
        stacked_shortcut, Conjunction, EvalResult, Executor, ExecutorConfig, FnPipeline, Instance,
        Outcome, Pipeline, ProvenanceStore, StackedConfig,
    };
    use bugdoc::synth::{CauseScenario, SynthConfig, SyntheticPipeline};
    use proptest::prelude::*;
    use std::sync::Arc;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Stacked Shortcut's union never contains a predicate foreign to
        /// CP_f (all asserted pairs come from the failing instance), and the
        /// asserted cause is never contradicted by the observed history.
        #[test]
        fn stacked_union_is_subset_of_cpf(seed in 0u64..500) {
            let pipe = Arc::new(SyntheticPipeline::generate(
                &SynthConfig {
                    scenario: CauseScenario::SingleConjunction,
                    n_params: (3, 6),
                    n_values: (4, 8),
                    ..SynthConfig::default()
                },
                seed,
            ));
            let seeds = pipe.seed_history(1, 6, seed ^ 0xAB);
            let mut prov = ProvenanceStore::new(pipe.space().clone());
            for (inst, eval) in &seeds {
                prov.record(inst.clone(), *eval);
            }
            let Some(cp_f) = prov.first_failing().cloned() else { return Ok(()) };
            let exec = Executor::with_provenance(
                pipe.clone() as Arc<dyn Pipeline>,
                ExecutorConfig { workers: 3, budget: None, ..Default::default() },
                prov,
            );
            let report = stacked_shortcut(
                &exec,
                &StackedConfig { seed, ..StackedConfig::default() },
            );
            if let Ok(report) = report {
                if let Some(cause) = report.cause {
                    prop_assert!(cause.satisfied_by(&cp_f));
                    exec.with_provenance_ref(|p| {
                        prop_assert!(!p.succeeding_superset_exists(&cause));
                        Ok(())
                    })?;
                }
            }
        }

        /// Theorem 1's regime, stacked: with a singleton planted cause, the
        /// asserted cause — when one is asserted under true disjoint goods —
        /// is definitive (every satisfying instance fails).
        #[test]
        fn stacked_on_singleton_causes_is_definitive(seed in 0u64..300) {
            let pipe = Arc::new(SyntheticPipeline::generate(
                &SynthConfig {
                    scenario: CauseScenario::SingleTriple,
                    n_params: (3, 5),
                    n_values: (4, 6),
                    ..SynthConfig::default()
                },
                seed,
            ));
            let truth = pipe.truth().clone();
            let space = pipe.space().clone();
            let seeds = pipe.seed_history(1, 6, seed ^ 0xCD);
            let mut prov = ProvenanceStore::new(space.clone());
            for (inst, eval) in &seeds {
                prov.record(inst.clone(), *eval);
            }
            let exec = Executor::with_provenance(
                pipe.clone() as Arc<dyn Pipeline>,
                ExecutorConfig { workers: 3, budget: None, ..Default::default() },
                prov,
            );
            if let Ok(report) = stacked_shortcut(
                &exec,
                &StackedConfig { seed, ..StackedConfig::default() },
            ) {
                if let Some(cause) = report.cause {
                    // The union may carry extra equalities beyond the planted
                    // triple (heuristic regime), but it must stay definitive:
                    // it always implies the planted cause when it contains it,
                    // and at minimum is never satisfied by a succeeding run.
                    let _c: &Conjunction = &cause;
                    let probe_fails = |inst: &Instance| truth.fails(inst);
                    // Sample the cause region via the pipeline itself.
                    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
                    for _ in 0..10 {
                        if let Some(inst) = bugdoc::synth::sample_instance(
                            &space,
                            Some(&cause.canonicalize(&space)),
                            &[],
                            &mut rng,
                        ) {
                            if truth.is_definitive(&space, &cause) {
                                prop_assert!(probe_fails(&inst));
                            }
                        }
                    }
                    let _ = FnPipeline::new(space.clone(), |_: &Instance| {
                        EvalResult::of(Outcome::Succeed)
                    });
                }
            }
        }
    }
}
