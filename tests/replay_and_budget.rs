//! Integration tests for the constrained execution regimes: instance
//! budgets (paper §5's budget-matched evaluation), historical replay with
//! early stop (§5.3), and fault injection.

use bugdoc::engine::FaultInjector;
use bugdoc::pipelines::{DbSherlockConfig, DbSherlockDataset};
use bugdoc::prelude::*;
use bugdoc::synth::{CauseScenario, SynthConfig, SyntheticPipeline};
use std::sync::Arc;

fn synthetic(seed: u64) -> Arc<SyntheticPipeline> {
    Arc::new(SyntheticPipeline::generate(
        &SynthConfig {
            scenario: CauseScenario::SingleConjunction,
            n_params: (4, 6),
            n_values: (5, 8),
            ..SynthConfig::default()
        },
        seed,
    ))
}

fn seeded_exec(pipe: &Arc<SyntheticPipeline>, budget: Option<usize>) -> Executor {
    let seeds = pipe.seed_history(2, 6, 99);
    let mut prov = ProvenanceStore::new(pipe.space().clone());
    for (inst, eval) in &seeds {
        prov.record(inst.clone(), *eval);
    }
    Executor::with_provenance(
        pipe.clone() as Arc<dyn Pipeline>,
        ExecutorConfig { workers: 4, budget, ..Default::default() },
        prov,
    )
}

/// Every algorithm respects a hard instance budget and still terminates
/// with a best-effort report.
#[test]
fn all_algorithms_respect_budget() {
    for budget in [0usize, 1, 3, 10] {
        let pipe = synthetic(42);
        let exec = seeded_exec(&pipe, Some(budget));
        let _ = stacked_shortcut(&exec, &StackedConfig::default());
        assert!(
            exec.stats().new_executions <= budget,
            "stacked overran budget {budget}"
        );

        let pipe = synthetic(42);
        let exec = seeded_exec(&pipe, Some(budget));
        let _ = debugging_decision_trees(&exec, &DdtConfig::default());
        assert!(
            exec.stats().new_executions <= budget,
            "ddt overran budget {budget}"
        );

        let pipe = synthetic(42);
        let exec = seeded_exec(&pipe, Some(budget));
        let _ = diagnose(&exec, &BugDocConfig::default());
        assert!(
            exec.stats().new_executions <= budget,
            "driver overran budget {budget}"
        );
    }
}

/// Budgeted runs never assert a cause contradicted by the data they saw.
#[test]
fn budgeted_assertions_have_no_succeeding_superset() {
    for seed in [1u64, 2, 3, 4] {
        let pipe = synthetic(seed);
        let exec = seeded_exec(&pipe, Some(15));
        if let Ok(diag) = diagnose(&exec, &BugDocConfig::default()) {
            let prov = exec.provenance();
            for cause in diag.causes.conjuncts() {
                assert!(
                    !prov.succeeding_superset_exists(cause),
                    "seed {seed}: asserted cause contradicted by history"
                );
            }
        }
    }
}

/// Historical replay: requests outside the log early-stop, nothing outside
/// the replayable set is ever recorded, and the holdout stays untouched.
#[test]
fn replay_early_stop_and_isolation() {
    let dataset = DbSherlockDataset::generate(&DbSherlockConfig {
        n_classes: 3,
        logs_per_class: 15,
        normal_logs: 90,
        ..Default::default()
    });
    let problem = dataset.problem(0);
    let replay = problem.historical_pipeline();
    let exec = Executor::with_provenance(
        Arc::new(replay) as Arc<dyn Pipeline>,
        ExecutorConfig::default(),
        problem.initial_provenance(),
    );
    let _ = diagnose(&exec, &BugDocConfig::default());

    // Everything recorded must come from train ∪ budget_pool.
    let allowed: std::collections::HashSet<&Instance> = problem
        .train
        .iter()
        .chain(problem.budget_pool.iter())
        .map(|(i, _)| i)
        .collect();
    let prov = exec.provenance();
    for run in prov.runs() {
        assert!(
            allowed.contains(&run.instance),
            "executed an instance outside the replayable set"
        );
    }
    // Holdout instances were never touched.
    for (inst, _) in &problem.holdout {
        assert!(prov.lookup(inst).is_none(), "holdout instance leaked");
    }
}

/// Fault injection: with a fraction of instances unavailable, the algorithms
/// still terminate and asserted causes still respect the observed data.
#[test]
fn fault_injection_robustness() {
    for fraction in [0.2, 0.5, 0.8] {
        let pipe = synthetic(7);
        let space = pipe.space().clone();
        let truth = pipe.truth().clone();
        let injected = FaultInjector::new(
            SyntheticPipeline::generate(
                &SynthConfig {
                    scenario: CauseScenario::SingleConjunction,
                    n_params: (4, 6),
                    n_values: (5, 8),
                    ..SynthConfig::default()
                },
                7,
            ),
            fraction,
        );
        let mut prov = ProvenanceStore::new(space.clone());
        for (inst, eval) in pipe.seed_history(2, 6, 99) {
            prov.record(inst, eval);
        }
        let exec = Executor::with_provenance(
            Arc::new(injected) as Arc<dyn Pipeline>,
            ExecutorConfig::default(),
            prov,
        );
        let result = diagnose(&exec, &BugDocConfig::default());
        if let Ok(diag) = result {
            let prov = exec.provenance();
            for cause in diag.causes.conjuncts() {
                assert!(!prov.succeeding_superset_exists(cause));
            }
            let _ = truth; // ground truth available for manual inspection
        }
        assert!(exec.stats().unavailable > 0 || fraction < 0.5);
    }
}

/// The virtual clock: a 5-worker run of the same workload takes at most the
/// 1-worker virtual time and at least a fifth of it.
#[test]
fn virtual_clock_bounds() {
    let run = |workers: usize| {
        let pipe = Arc::new(SyntheticPipeline::generate(
            &SynthConfig {
                scenario: CauseScenario::SingleConjunction,
                n_params: (5, 5),
                n_values: (5, 6),
                instance_cost: SimTime::from_mins(20.0),
                ..SynthConfig::default()
            },
            3,
        ));
        let seeds = pipe.seed_history(2, 6, 1);
        let mut prov = ProvenanceStore::new(pipe.space().clone());
        for (inst, eval) in &seeds {
            prov.record(inst.clone(), *eval);
        }
        let exec = Executor::with_provenance(
            pipe.clone() as Arc<dyn Pipeline>,
            ExecutorConfig {
                workers,
                budget: None,
                ..Default::default()
            },
            prov,
        );
        let _ = debugging_decision_trees(
            &exec,
            &DdtConfig {
                mode: DdtMode::FindAll,
                seed: 3,
                ..DdtConfig::default()
            },
        );
        let stats = exec.stats();
        (stats.sim_time.secs(), stats.new_executions)
    };
    let (t1, n1) = run(1);
    let (t5, n5) = run(5);
    assert_eq!(n1, n5, "same deterministic workload");
    assert!(t5 <= t1 + 1e-9);
    assert!(t5 * 5.0 >= t1 - 1e-9, "speedup cannot exceed worker count");
}
