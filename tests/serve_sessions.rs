//! Multi-session daemon integration: concurrent diagnosis sessions over one
//! in-process `bugdoc serve` daemon share executions.
//!
//! The contracts under test, end to end over the wire protocol:
//!
//! * **Bit-identical reports** — every one of N concurrent sessions gets a
//!   cause report byte-for-byte equal to a one-shot in-process diagnosis of
//!   the same pipeline with the same settings.
//! * **Shared executions** — the daemon's total new executions stay far
//!   below N independent one-shot runs, and sessions observe cross-session
//!   cache hits.
//! * **Accounting invariant** — `new_executions == provenance.len() - seeded`
//!   holds on the shared executor under concurrency.
//! * **Session lifecycle** — sessions survive dropped connections (detach +
//!   re-attach), and budget reservations gate admission across sessions.

use bugdoc::pipelines::MlPipeline;
use bugdoc::prelude::*;
use bugdoc::serve::{Client, Daemon, DaemonSummary, DiagnoseParams, ExecutorFactory, SessionManager};
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

const SESSIONS: usize = 8;

/// Factory over the paper's Figure-1 pipeline. The only spec keyword it
/// honors is `budget <n>`, so tests can exercise admission control; the
/// rest of the text is just the sharing key.
fn ml_factory() -> Box<ExecutorFactory> {
    Box::new(|text: &str| {
        let budget = text
            .lines()
            .find_map(|l| l.strip_prefix("budget "))
            .map(|n| n.trim().parse().map_err(|_| "bad budget".to_string()))
            .transpose()?;
        Ok(Executor::new(
            Arc::new(MlPipeline::new()) as Arc<dyn Pipeline>,
            ExecutorConfig {
                budget,
                ..ExecutorConfig::default()
            },
        ))
    })
}

struct Harness {
    socket: PathBuf,
    shutdown: Arc<AtomicBool>,
    daemon: JoinHandle<Result<DaemonSummary, String>>,
}

impl Harness {
    fn start(tag: &str) -> Harness {
        let socket = std::env::temp_dir().join(format!(
            "bugdoc-serve-{tag}-{}.sock",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&socket);
        let listener = UnixListener::bind(&socket).unwrap();
        let manager = Arc::new(SessionManager::new(ml_factory()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let daemon = std::thread::spawn(move || Daemon::over(listener, manager).run(&flag));
        Harness {
            socket,
            shutdown,
            daemon,
        }
    }

    fn client(&self) -> Client {
        Client::connect(&self.socket).unwrap()
    }

    fn stop(self) -> DaemonSummary {
        self.shutdown.store(true, Ordering::SeqCst);
        let summary = self.daemon.join().unwrap().unwrap();
        let _ = std::fs::remove_file(&self.socket);
        summary
    }
}

fn stat(stats: &[(String, u64)], key: &str) -> u64 {
    stats
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| *v)
        .unwrap_or_else(|| panic!("missing stat {key}: {stats:?}"))
}

#[test]
fn concurrent_sessions_share_executions_and_agree_with_one_shot() {
    // One-shot baseline: the exact report and cost of diagnosing the
    // pipeline alone, with the same front-end settings the daemon uses.
    let solo_exec = (ml_factory())("ml pipeline\n").unwrap();
    let solo = diagnose(
        &solo_exec,
        &BugDocConfig::front_end(Strategy::Combined, DdtMode::FindAll, 0),
    )
    .unwrap();
    let solo_report = solo.render_causes(&solo_exec.space());
    let solo_new = solo.new_executions;
    assert!(solo_new > 0, "baseline must actually execute");

    let harness = Harness::start("share");
    let results: Vec<(String, u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SESSIONS)
            .map(|_| {
                let harness = &harness;
                scope.spawn(move || {
                    let mut client = harness.client();
                    client.session_new().unwrap();
                    client.spec("ml pipeline\n", 0).unwrap();
                    let report = client.diagnose(DiagnoseParams::default()).unwrap();
                    let stats = client.stats().unwrap();
                    let new = stat(&stats, "session.new_executions");
                    let hits = stat(&stats, "session.cache_hits");
                    client.request("CLOSE").unwrap();
                    (report, new, hits)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (report, _, _) in &results {
        assert_eq!(
            report, &solo_report,
            "a served diagnosis diverged from the one-shot run"
        );
    }

    // Shared-executor accounting, read by a fresh session after the dust
    // settles.
    let mut inspector = harness.client();
    inspector.session_new().unwrap();
    inspector.spec("ml pipeline\n", 0).unwrap();
    let stats = inspector.stats().unwrap();
    let total_new = stat(&stats, "shared.new_executions");
    let total_hits = stat(&stats, "shared.cache_hits");
    let prov_runs = stat(&stats, "shared.provenance_runs");

    assert!(
        (total_new as usize) < SESSIONS * solo_new,
        "{SESSIONS} sessions paid {total_new} executions — no sharing \
         (one-shot costs {solo_new})"
    );
    assert!(total_hits > 0, "no cross-session cache hits");
    let session_new_sum: u64 = results.iter().map(|(_, n, _)| *n).sum();
    assert!(
        session_new_sum < (SESSIONS * solo_new) as u64,
        "per-session windows show no sharing: {session_new_sum}"
    );
    // Nothing seeded, so every provenance run is a counted new execution.
    assert_eq!(
        total_new, prov_runs,
        "new_executions == provenance.len() - seeded violated under concurrency"
    );

    let summary = harness.stop();
    assert_eq!(summary.connections, SESSIONS + 1);
    assert_eq!(summary.executors_closed, 0, "no durable stores here");
}

#[test]
fn sessions_survive_dropped_connections() {
    let harness = Harness::start("reattach");
    let id = {
        let mut client = harness.client();
        let id = client.session_new().unwrap();
        client.spec("ml pipeline\n", 0).unwrap();
        let report = client.diagnose(DiagnoseParams::default()).unwrap();
        assert!(report.contains("Library Version"), "{report}");
        id
        // Connection drops here without DETACH/CLOSE.
    };
    // The daemon notices the EOF and detaches the session; give it a beat.
    let mut reattached = None;
    for _ in 0..100 {
        let mut client = harness.client();
        match client.session_attach(id) {
            Ok(got) => {
                reattached = Some((client, got));
                break;
            }
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(20)),
        }
    }
    let (mut client, got) = reattached.expect("session was never detached");
    assert_eq!(got, id);
    // The re-attached session still remembers its bound spec.
    let stats = client.stats().unwrap();
    assert!(stat(&stats, "shared.provenance_runs") > 0);
    client.request("CLOSE").unwrap();
    harness.stop();
}

#[test]
fn reservations_gate_admission_across_the_wire() {
    let harness = Harness::start("admission");
    let spec = "budget 40\nml pipeline\n";
    let mut big = harness.client();
    big.session_new().unwrap();
    let ack = big.spec(spec, 30).unwrap();
    assert!(ack.contains("fresh"), "{ack}");

    let mut small = harness.client();
    small.session_new().unwrap();
    let refused = small.spec(spec, 20).unwrap_err();
    assert!(refused.contains("cannot admit"), "{refused}");
    // A fitting reservation is admitted on the same (still-bound) session.
    let ack = small.spec(spec, 10).unwrap();
    assert!(ack.contains("shared"), "{ack}");

    // Closing the big session frees its slots for a newcomer.
    big.request("CLOSE").unwrap();
    let mut next = harness.client();
    next.session_new().unwrap();
    next.spec(spec, 30).unwrap();
    harness.stop();
}

#[test]
fn stats_keys_mirror_exec_stats_counters_exactly() {
    let harness = Harness::start("parity");
    let mut client = harness.client();
    client.session_new().unwrap();
    client.spec("ml pipeline\n", 0).unwrap();
    client.diagnose(DiagnoseParams::default()).unwrap();
    let stats = client.stats().unwrap();

    // Every ExecStats counter appears in both windows — `evictions`,
    // `log_rederivations`, and the three `bounds_*` counters included, so
    // the daemon view can never silently lag the one-shot CLI summary.
    let counters = bugdoc::engine::ExecStats::default().counter_fields();
    for (name, _) in counters {
        stat(&stats, &format!("session.{name}"));
        stat(&stats, &format!("shared.{name}"));
    }
    // And the other direction: every wire key is either a counter field or
    // one of the declared shared-lifecycle extras, so a field added to
    // ExecStats::counter_fields (or a stray renderer line) breaks parity
    // loudly here rather than drifting.
    const EXTRAS: &[&str] = &[
        "shared.provenance_runs",
        "shared.sessions",
        "shared.reserved",
        "shared.remaining_budget",
    ];
    for (key, _) in &stats {
        let known = EXTRAS.contains(&key.as_str())
            || counters.iter().any(|(name, _)| {
                key == &format!("session.{name}") || key == &format!("shared.{name}")
            });
        assert!(known, "unexpected stats key {key:?}");
    }
    client.request("CLOSE").unwrap();
    harness.stop();
}

#[test]
fn metrics_and_flight_surface_a_diagnosis() {
    let harness = Harness::start("metrics");
    let mut client = harness.client();
    client.session_new().unwrap();
    client.spec("ml pipeline\n", 0).unwrap();
    client.diagnose(DiagnoseParams::default()).unwrap();

    let metrics = client.metrics().unwrap();
    assert!(!metrics.is_empty(), "empty exposition");
    for line in &metrics {
        if line.starts_with('#') {
            assert!(
                line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                "malformed comment line {line:?}"
            );
            continue;
        }
        // Samples are `name[{labels}] value` with a finite numeric value.
        let (_, value) = line.rsplit_once(' ').expect("sample line without value");
        let parsed: f64 = value.parse().unwrap_or_else(|_| {
            panic!("non-numeric sample value in {line:?}")
        });
        assert!(parsed.is_finite(), "{line:?}");
    }
    let sample_value = |name: &str| {
        metrics
            .iter()
            .filter(|l| !l.starts_with('#'))
            .find(|l| l.split([' ', '{']).next() == Some(name))
            .and_then(|l| l.rsplit_once(' '))
            .map(|(_, v)| v.parse::<f64>().unwrap())
            .unwrap_or_else(|| panic!("metric {name} missing: {metrics:?}"))
    };
    // The scrape-time executor bridge: counters summed over resident
    // executors, under the names ExecStats::counter_fields declares.
    assert!(sample_value("bugdoc_executor_new_executions_total") > 0.0);
    // The serve session lifecycle counters and the diagnosis histogram.
    assert!(sample_value("bugdoc_serve_sessions_created_total") >= 1.0);
    assert!(sample_value("bugdoc_serve_diagnose_ns_count") >= 1.0);
    // Per-executor gauges carry an executor label.
    assert!(
        metrics
            .iter()
            .any(|l| l.starts_with("bugdoc_serve_executor_sessions{executor=")),
        "{metrics:?}"
    );

    let flight = client.flight().unwrap();
    let kinds: Vec<&str> = flight
        .iter()
        .map(|l| {
            let fields: Vec<&str> = l.split_whitespace().collect();
            assert_eq!(fields.len(), 6, "malformed flight line {l:?}");
            fields[2]
        })
        .collect();
    for kind in ["session_created", "spec_bound", "diagnose_start", "diagnose_end"] {
        assert!(kinds.contains(&kind), "no {kind} event: {flight:?}");
    }
    // Sequence numbers come back oldest-first and strictly increasing.
    let seqs: Vec<u64> = flight
        .iter()
        .map(|l| l.split_whitespace().next().unwrap().parse().unwrap())
        .collect();
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "{seqs:?}");

    client.request("CLOSE").unwrap();
    harness.stop();
}

#[test]
fn shutdown_command_drains_the_daemon() {
    let harness = Harness::start("shutdown");
    let mut client = harness.client();
    let reply = client.request("SHUTDOWN").unwrap();
    assert_eq!(reply.head, "shutting-down");
    // The daemon exits on its own; stop() then just joins it.
    let summary = harness.daemon.join().unwrap().unwrap();
    assert_eq!(summary.connections, 1);
    let _ = std::fs::remove_file(&harness.socket);
}
